// k-ary n-tree (fat-tree) topology.
//
// The k-ary n-tree (paper §2, and Petrini & Vanneschi IPPS'97) has k^n
// processing nodes at the leaves and n levels of k^(n-1) switches, each with
// 2k ports (k down, k up). Level 0 is the root level; level n-1 is the leaf
// level, whose down ports connect to the processing nodes. Root-level up
// ports are the "external connections" of Figure 1 and are left unconnected.
//
// A switch is identified by <w, l> where l is the level and w is a word of
// n-1 base-k digits w_0 ... w_(n-2) (w_0 most significant). A switch <w, l>
// and a switch <w', l+1> are connected iff w and w' agree in every digit
// except possibly digit l. A processing node p_0 ... p_(n-1) attaches to the
// leaf switch <p_0 ... p_(n-2), n-1> on down port p_(n-1).
//
// Consequences used by the routing algorithm:
//  * <w, l> is an ancestor of node q iff w_i = q_i for all i < l;
//  * the descending path from an ancestor is unique: at level l take down
//    port q_l;
//  * the nearest common ancestors of p and q sit at level m = length of the
//    longest common digit prefix of p and q, and any up port works while
//    ascending (full adaptivity).
//
// Port numbering: ports 0..k-1 are down ports (child/terminal index c),
// ports k..2k-1 are up ports (up index u = port - k).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "topology/topology.hpp"

namespace smart {

class KaryNTree final : public Topology {
 public:
  /// Builds a k-ary n-tree; requires k >= 2, n >= 1, k^n <= 2^32.
  KaryNTree(unsigned k, unsigned n);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::size_t node_count() const override { return nodes_; }
  [[nodiscard]] std::size_t switch_count() const override {
    return static_cast<std::size_t>(n_) * switches_per_level_;
  }
  [[nodiscard]] std::size_t ports_per_switch() const override { return 2 * k_; }
  [[nodiscard]] PortPeer port_peer(SwitchId s, PortId p) const override;
  [[nodiscard]] Attachment terminal_attachment(NodeId node) const override;
  [[nodiscard]] unsigned min_hops(NodeId src, NodeId dst) const override;
  [[nodiscard]] unsigned diameter() const override { return 2 * n_; }
  [[nodiscard]] std::size_t bisection_channels() const override;
  [[nodiscard]] bool is_direct() const override { return false; }

  [[nodiscard]] unsigned radix() const noexcept { return k_; }
  [[nodiscard]] unsigned levels() const noexcept { return n_; }
  [[nodiscard]] std::size_t switches_per_level() const noexcept {
    return switches_per_level_;
  }

  /// Switch id for <word, level>.
  [[nodiscard]] SwitchId switch_id(unsigned level, std::uint64_t word) const;
  [[nodiscard]] unsigned level_of(SwitchId s) const;
  [[nodiscard]] std::uint64_t word_of(SwitchId s) const;

  /// Digit w_i (i in [0, n-2], most significant first) of a switch word.
  [[nodiscard]] unsigned word_digit(std::uint64_t word, unsigned i) const;

  /// Digit p_i (i in [0, n-1], most significant first) of a node label.
  [[nodiscard]] unsigned node_digit(NodeId node, unsigned i) const;

  /// True iff switch s can reach node q going only downwards.
  [[nodiscard]] bool is_ancestor(SwitchId s, NodeId q) const;

  /// The unique down port from ancestor s towards node q.
  [[nodiscard]] PortId down_port_towards(SwitchId s, NodeId q) const;

  /// Level of the nearest common ancestors of p and q (p != q); equals the
  /// length of their longest common digit prefix.
  [[nodiscard]] unsigned nca_level(NodeId p, NodeId q) const;

  [[nodiscard]] static constexpr bool is_down_port(PortId p, unsigned k) noexcept {
    return p < k;
  }
  [[nodiscard]] bool is_down_port(PortId p) const noexcept { return p < k_; }
  [[nodiscard]] bool is_up_port(PortId p) const noexcept {
    return p >= k_ && p < 2 * k_;
  }

 private:
  unsigned k_;
  unsigned n_;
  std::size_t nodes_;
  std::size_t switches_per_level_;
  std::vector<std::uint64_t> word_stride_;  ///< k^(n-2-i) for digit i
  std::vector<std::uint64_t> node_stride_;  ///< k^(n-1-i) for digit i
};

}  // namespace smart
