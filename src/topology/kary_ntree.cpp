#include "topology/kary_ntree.hpp"

#include "util/bits.hpp"
#include "util/check.hpp"

namespace smart {

KaryNTree::KaryNTree(unsigned k, unsigned n) : k_(k), n_(n) {
  SMART_CHECK_MSG(k >= 2, "k-ary n-tree requires radix k >= 2");
  SMART_CHECK_MSG(n >= 1, "k-ary n-tree requires n >= 1 levels");
  std::uint64_t count = 1;
  for (unsigned i = 0; i < n; ++i) {
    SMART_CHECK_MSG(count <= (1ULL << 32) / k, "k^n exceeds 2^32 nodes");
    count *= k;
  }
  nodes_ = static_cast<std::size_t>(count);
  switches_per_level_ = static_cast<std::size_t>(count / k);

  // Stride of digit i (most significant first) in an m-digit base-k number.
  word_stride_.resize(n >= 2 ? n - 1 : 0);
  for (unsigned i = 0; i + 1 < n; ++i) {
    word_stride_[i] = ipow(k, n - 2 - i);
  }
  node_stride_.resize(n);
  for (unsigned i = 0; i < n; ++i) {
    node_stride_[i] = ipow(k, n - 1 - i);
  }
}

std::string KaryNTree::name() const {
  return std::to_string(k_) + "-ary " + std::to_string(n_) + "-tree";
}

SwitchId KaryNTree::switch_id(unsigned level, std::uint64_t word) const {
  SMART_DCHECK(level < n_);
  SMART_DCHECK(word < switches_per_level_);
  return static_cast<SwitchId>(level * switches_per_level_ + word);
}

unsigned KaryNTree::level_of(SwitchId s) const {
  SMART_DCHECK(s < switch_count());
  return static_cast<unsigned>(s / switches_per_level_);
}

std::uint64_t KaryNTree::word_of(SwitchId s) const {
  SMART_DCHECK(s < switch_count());
  return s % switches_per_level_;
}

unsigned KaryNTree::word_digit(std::uint64_t word, unsigned i) const {
  SMART_DCHECK(i + 1 < n_);
  return static_cast<unsigned>((word / word_stride_[i]) % k_);
}

unsigned KaryNTree::node_digit(NodeId node, unsigned i) const {
  SMART_DCHECK(i < n_);
  return static_cast<unsigned>((node / node_stride_[i]) % k_);
}

PortPeer KaryNTree::port_peer(SwitchId s, PortId p) const {
  SMART_CHECK(p < 2 * k_);
  const unsigned level = level_of(s);
  const std::uint64_t word = word_of(s);

  if (is_down_port(p)) {
    const unsigned c = p;  // child index
    if (level == n_ - 1) {
      // Leaf switch: down ports reach the processing nodes directly.
      const auto node = static_cast<NodeId>(word * k_ + c);
      return PortPeer{PeerKind::kTerminal, node, 0};
    }
    // Child switch <w[level := c], level + 1>; from the child's side the
    // freed digit is still `level`, so its up port back to us is w_level.
    const std::uint64_t child_word =
        word + (static_cast<std::uint64_t>(c) - word_digit(word, level)) *
                   word_stride_[level];
    const PortId child_up = k_ + word_digit(word, level);
    return PortPeer{PeerKind::kSwitch, switch_id(level + 1, child_word),
                    child_up};
  }

  // Up port.
  const unsigned u = p - k_;
  if (level == 0) {
    // Root-level external connections (paper Figure 1): unconnected.
    return PortPeer{PeerKind::kUnconnected, 0, 0};
  }
  // Parent switch <w[level-1 := u], level - 1>; its down port back to us is
  // our digit at the freed position, w_(level-1).
  const unsigned freed = level - 1;
  const std::uint64_t parent_word =
      word + (static_cast<std::uint64_t>(u) - word_digit(word, freed)) *
                 word_stride_[freed];
  const PortId parent_down = word_digit(word, freed);
  return PortPeer{PeerKind::kSwitch, switch_id(level - 1, parent_word),
                  parent_down};
}

Attachment KaryNTree::terminal_attachment(NodeId node) const {
  SMART_DCHECK(node < nodes_);
  const std::uint64_t word = node / k_;
  const PortId port = node % k_;
  return Attachment{switch_id(n_ - 1, word), port};
}

bool KaryNTree::is_ancestor(SwitchId s, NodeId q) const {
  const unsigned level = level_of(s);
  const std::uint64_t word = word_of(s);
  for (unsigned i = 0; i < level; ++i) {
    if (word_digit(word, i) != node_digit(q, i)) return false;
  }
  return true;
}

PortId KaryNTree::down_port_towards(SwitchId s, NodeId q) const {
  SMART_DCHECK(is_ancestor(s, q));
  return node_digit(q, level_of(s));
}

unsigned KaryNTree::nca_level(NodeId p, NodeId q) const {
  SMART_DCHECK(p != q);
  unsigned m = 0;
  while (m < n_ && node_digit(p, m) == node_digit(q, m)) ++m;
  SMART_DCHECK(m < n_);
  return m;
}

unsigned KaryNTree::min_hops(NodeId src, NodeId dst) const {
  if (src == dst) return 0;
  // Terminal link up, (n-1-m) switch-to-switch links up to level m, the
  // mirror image down: 2(n - m) channels in total.
  return 2 * (n_ - nca_level(src, dst));
}

std::size_t KaryNTree::bisection_channels() const {
  // The k-ary n-tree has full bisection bandwidth: splitting the terminals
  // into halves by the most significant digit, every packet between halves
  // can use a distinct root path; N/2 unidirectional channels cross the cut
  // in each direction at every level boundary above the NCA level.
  return nodes_ / 2;
}

}  // namespace smart
