// smartsim_report: perf-regression verdict between two manifest directories,
// plus a timeline view over flight-recorder dumps.
//
// Usage:
//   smartsim_report [--check] [--threshold F] [--time-threshold F] DIR_A DIR_B
//   smartsim_report --timeline FLIGHT.json
//   smartsim_report --timeline-diff FLIGHT_A.json FLIGHT_B.json
//
// DIR_A holds the baseline manifests, DIR_B the candidate run (both as
// written by smartsim_cli --manifest or the benches via run_benches.sh).
// Manifests are paired by producer and their metric registries diffed; the
// namespace policy in src/obs/registry.hpp decides which drifts fail the
// report and which are advisory. With --check the exit code is 2 when any
// deterministic metric regressed — anomaly-watchdog verdicts
// (obs/anomaly/*) count: a candidate that trips a detector the baseline
// did not is a regression. Without --check the tool only prints the table.
//
// --timeline renders one flight dump (smartsim_cli --flight, or the
// automatic <manifest>.flight.json written on an anomaly) as a
// cycle-by-cycle table; --timeline-diff aligns two dumps by cycle.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "obs/flight.hpp"
#include "obs/manifest.hpp"
#include "obs/report.hpp"

namespace {

void usage(std::FILE* out) {
  std::fputs(
      "usage: smartsim_report [--check] [--threshold F] [--time-threshold F] "
      "DIR_A DIR_B\n"
      "       smartsim_report --timeline FLIGHT.json\n"
      "       smartsim_report --timeline-diff FLIGHT_A.json FLIGHT_B.json\n"
      "  DIR_A  baseline manifest directory\n"
      "  DIR_B  candidate manifest directory\n"
      "  --check            exit 2 when a deterministic metric regressed\n"
      "                     (a triggered obs/anomaly/* verdict absent from\n"
      "                     the baseline always fails)\n"
      "  --threshold F      relative drift tolerated on deterministic "
      "metrics (default 0.05)\n"
      "  --time-threshold F relative drift tolerated on time/ metrics "
      "before a warning (default 0.25)\n"
      "  --timeline F       render a flight-recorder dump as a timeline\n"
      "  --timeline-diff A B  align two flight dumps by cycle and diff\n"
      "  --version          print build provenance and exit\n",
      out);
}

bool parse_double(const char* text, double* out) {
  char* end = nullptr;
  *out = std::strtod(text, &end);
  return end != text && *end == '\0' && *out >= 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  smart::ReportOptions options;
  bool check = false;
  bool timeline = false;
  bool timeline_diff = false;
  std::string dir_a;
  std::string dir_b;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      usage(stdout);
      return 0;
    }
    if (std::strcmp(arg, "--version") == 0) {
      std::printf("%s\n", smart::build_info_line().c_str());
      return 0;
    }
    if (std::strcmp(arg, "--check") == 0) {
      check = true;
      continue;
    }
    if (std::strcmp(arg, "--timeline") == 0) {
      timeline = true;
      continue;
    }
    if (std::strcmp(arg, "--timeline-diff") == 0) {
      timeline_diff = true;
      continue;
    }
    if (std::strcmp(arg, "--threshold") == 0 && i + 1 < argc) {
      if (!parse_double(argv[++i], &options.threshold)) {
        std::fprintf(stderr, "smartsim_report: bad --threshold value\n");
        return 1;
      }
      continue;
    }
    if (std::strcmp(arg, "--time-threshold") == 0 && i + 1 < argc) {
      if (!parse_double(argv[++i], &options.time_threshold)) {
        std::fprintf(stderr, "smartsim_report: bad --time-threshold value\n");
        return 1;
      }
      continue;
    }
    if (arg[0] == '-') {
      std::fprintf(stderr, "smartsim_report: unknown flag %s\n", arg);
      usage(stderr);
      return 1;
    }
    if (dir_a.empty()) {
      dir_a = arg;
    } else if (dir_b.empty()) {
      dir_b = arg;
    } else {
      std::fprintf(stderr, "smartsim_report: too many arguments\n");
      usage(stderr);
      return 1;
    }
  }
  if (timeline && timeline_diff) {
    std::fprintf(stderr,
                 "smartsim_report: --timeline and --timeline-diff are "
                 "mutually exclusive\n");
    return 1;
  }
  if (timeline || timeline_diff) {
    if (dir_a.empty() || (timeline_diff && dir_b.empty()) ||
        (timeline && !dir_b.empty())) {
      usage(stderr);
      return 1;
    }
    std::string error;
    smart::FlightSeries series_a;
    if (!smart::parse_flight(dir_a, &series_a, &error)) {
      std::fprintf(stderr, "smartsim_report: %s\n", error.c_str());
      return 1;
    }
    if (timeline) {
      std::fputs(smart::render_timeline(series_a).c_str(), stdout);
      return 0;
    }
    smart::FlightSeries series_b;
    if (!smart::parse_flight(dir_b, &series_b, &error)) {
      std::fprintf(stderr, "smartsim_report: %s\n", error.c_str());
      return 1;
    }
    std::fputs(smart::render_timeline_diff(series_a, series_b).c_str(),
               stdout);
    return 0;
  }
  if (dir_a.empty() || dir_b.empty()) {
    usage(stderr);
    return 1;
  }

  std::string error;
  const smart::ReportResult result =
      smart::compare_manifest_dirs(dir_a, dir_b, options, &error);
  if (!error.empty()) {
    std::fprintf(stderr, "smartsim_report: %s\n", error.c_str());
    return 1;
  }
  std::fputs(smart::render_report(result).c_str(), stdout);
  if (check && !result.ok()) return 2;
  return 0;
}
