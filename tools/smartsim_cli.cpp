// smartsim — command-line driver for the simulator.
//
// Runs a single simulation or a load sweep for any supported network,
// routing algorithm, traffic pattern and arrival process, and prints the
// metrics (optionally as CSV). Examples:
//
//   smartsim --topology cube --k 16 --n 2 --routing duato
//            --pattern uniform --load 0.6
//   smartsim --topology tree --k 4 --n 4 --vcs 2 --pattern transpose --sweep
//   smartsim --topology mesh --k 8 --n 2 --routing det --pattern tornado
//            --load 0.4 --injection bursty --csv out.csv
//   smartsim --topology tree --faults link:5:2@3000 --load 0.6
//   smartsim --topology cube --fault-rate 0.02 --fault-cycle 5000 --load 0.5
//
// Exit status: 0 on success, 1 on bad usage, 2 if the run deadlocked,
// 3 if faults made traffic unroutable (packets dropped or fault-stall).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/network.hpp"
#include "obs/manifest.hpp"
#include "obs/registry.hpp"
#include "routing/selection.hpp"
#include "synth/families.hpp"
#include "topology/registry.hpp"
#include "workload/workload.hpp"

namespace {

using namespace smart;

void usage() {
  std::printf(
      "usage: smartsim_cli [options]\n"
      "  --topology <family[:k=v,...]>  (default cube); families:\n"
      "%s"
      "  --k <radix>                 (default 16 cube / 4 tree)\n"
      "  --n <dims|levels>           (default 2 cube / 4 tree)\n"
      "  --routing det|duato|valiant|tree|dor|updown|escape\n"
      "                              (default: the family's deadlock-free\n"
      "                              algorithm); %s"
      "  --misroute                  escape routing only: allow one\n"
      "                              non-minimal adaptive hop per packet\n"
      "  --throttle <0..1>           escape routing only: NICs hold new\n"
      "                              packets while the fraction of\n"
      "                              zero-credit escape lanes at their\n"
      "                              switch reaches the threshold\n",
      TopologyRegistry::instance().usage().c_str(),
      TopologyRegistry::instance().routing_usage().c_str());
  std::printf(
      "  --vcs <1|2|4|...>           virtual channels (default 4)\n"
      "  --selection affine|rotating|random|credits|stall\n"
      "                              adaptive candidate ranking (stall is\n"
      "                              escape routing only)\n"
      "  --pattern uniform|complement|bitrev|transpose|shuffle|tornado|\n"
      "            neighbor|randperm|hotspot            (default uniform)\n"
      "  --load <0..1>               offered fraction of capacity (default 0.5)\n"
      "  --sweep                     sweep the default load grid instead\n"
      "  --workload <family[:k=v,...]>  closed-loop request/reply workload\n"
      "                              replacing the open-loop traffic (single\n"
      "                              run only; docs/WORKLOADS.md):\n"
      "%s"
      "  --injection bernoulli|bursty  arrival process (default bernoulli)\n"
      "  --burst-factor <f>          bursty peak/average (default 8)\n"
      "  --packet-bytes <B>          (default 64)\n"
      "  --buffer-depth <flits>      lane depth (default 4)\n"
      "  --flit-bytes <B>            0 = paper normalization (default)\n"
      "  --seed <u64>                (default 1)\n"
      "  --warmup <cycles>           (default 2000)\n"
      "  --horizon <cycles>          (default 20000)\n"
      "  --replications <N>         average N seeds, report 95%% CIs\n"
      "  --threads <N>               worker-thread budget (default 1; 0 =\n"
      "                              one per hardware thread). Sweep points\n"
      "                              and replications run concurrently\n"
      "                              first; leftover threads run inside\n"
      "                              each simulation (the engine's sharded\n"
      "                              pipeline), so a single run uses all N.\n"
      "                              Results are bit-identical for every\n"
      "                              thread count\n"
      "  --serial-threshold <N>      stay on the serial engine at or below\n"
      "                              N switches/NICs even with --threads\n"
      "                              (default 64); the chosen path and\n"
      "                              reason land in the run manifest\n"
      "  --csv <path>                also write results as CSV\n"
      "  --absolute                  report bits/ns and ns via the cost model\n"
      "  --faults <spec>             deterministic fault schedule, comma-\n"
      "                              separated link:SW:PORT@START[:REPAIR]\n"
      "                              and switch:SW@START[:REPAIR] entries\n"
      "  --fault-rate <0..1>         fraction of links to fault at random\n"
      "                              (deterministic in --seed)\n"
      "  --fault-cycle <c>           activation cycle for --fault-rate\n"
      "                              faults (default 0 = from the start)\n"
      "  --drain                     after the horizon, stop injecting and\n"
      "                              report the cycles to drain the fabric\n"
      "  --obs                       collect stall attribution and link\n"
      "                              utilization/occupancy (opt-in)\n"
      "  --obs-interval <cycles>     sampling interval for --obs (default\n"
      "                              1000; 0 = counters only, no series)\n"
      "  --trace-out <path>          write a Chrome trace-event JSON of\n"
      "                              every packet (implies --obs; single\n"
      "                              run only, not --sweep)\n"
      "  --trace-hops                add per-switch hop slices to the trace\n"
      "  --profile                   engine self-profiler: per-phase time\n"
      "                              shares, fused-path hit rate, dirty-list\n"
      "                              occupancy (opt-in, results unchanged)\n"
      "  --flight <path>             dump the always-on flight-recorder ring\n"
      "                              (per-interval network snapshots) to\n"
      "                              <path> as JSON (single run only); on an\n"
      "                              anomaly the ring is dumped next to the\n"
      "                              manifest automatically\n"
      "  --flight-interval <cycles>  snapshot cadence (default 256)\n"
      "  --flight-capacity <N>       ring size in snapshots (default 512)\n"
      "  --no-flight                 disable the flight recorder and the\n"
      "                              anomaly watchdogs (A/B overhead runs)\n"
      "  --heartbeat <cycles>        print a stderr progress line every N\n"
      "                              cycles (cycle, cycles/s, accepted\n"
      "                              fraction, ETA); 0 = off (default)\n"
      "  --manifest <path>           write a run manifest (config echo,\n"
      "                              build provenance, metrics registry);\n"
      "                              default <csv>.manifest.json with --csv\n"
      "  --version                   print build provenance and exit\n"
      "exit status: 0 ok, 1 usage, 2 deadlock, 3 unroutable traffic\n",
      WorkloadRegistry::instance().usage().c_str());
}

bool parse_pattern(const std::string& value, PatternKind& out) {
  if (value == "uniform") out = PatternKind::kUniform;
  else if (value == "complement") out = PatternKind::kComplement;
  else if (value == "bitrev") out = PatternKind::kBitReversal;
  else if (value == "transpose") out = PatternKind::kTranspose;
  else if (value == "shuffle") out = PatternKind::kShuffle;
  else if (value == "tornado") out = PatternKind::kTornado;
  else if (value == "neighbor") out = PatternKind::kNeighbor;
  else if (value == "randperm") out = PatternKind::kRandomPermutation;
  else if (value == "hotspot") out = PatternKind::kHotspot;
  else return false;
  return true;
}

bool parse_routing_key(const std::string& value, RoutingKind& out) {
  if (value == "det") out = RoutingKind::kCubeDeterministic;
  else if (value == "duato") out = RoutingKind::kCubeDuato;
  else if (value == "valiant") out = RoutingKind::kCubeValiant;
  else if (value == "tree") out = RoutingKind::kTreeAdaptive;
  else if (value == "dor") out = RoutingKind::kTorusDor;
  else if (value == "updown") out = RoutingKind::kUpDown;
  else if (value == "escape") out = RoutingKind::kEscapeAdaptive;
  else return false;
  return true;
}

/// Deadlock-freedom is per fabric: each family lists the routing keys
/// whose proof applies to it. An empty list (an externally registered
/// plugin family) trusts the builder.
bool routing_compatible(const TopologyFamily& family,
                        const std::string& key) {
  if (family.routing_keys.empty()) return true;
  for (const std::string& valid : family.routing_keys) {
    if (valid == key) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  ensure_builtin_families();
  ensure_builtin_workloads();
  SimConfig config;
  std::string topology_arg = "cube";
  std::string workload_arg;
  bool pattern_set = false;
  std::string routing_key;
  bool routing_set = false;
  bool k_set = false;
  bool n_set = false;
  bool sweep = false;
  bool absolute = false;
  unsigned replications = 1;
  unsigned threads = 1;
  std::string csv_path;
  std::string manifest_path;
  std::string faults_spec;
  double fault_rate = 0.0;
  std::uint64_t fault_cycle = 0;

  auto next_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", argv[i]);
      std::exit(1);
    }
    return argv[++i];
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (arg == "--version") {
      const BuildInfo& build = build_info();
      std::printf("%s\n", build_info_line().c_str());
      std::printf("  git:      %s\n", build.git_describe.c_str());
      std::printf("  build:    %s\n", build.build_type.c_str());
      std::printf("  compiler: %s\n", build.compiler.c_str());
      std::printf("  flags:    %s\n", build.cxx_flags.c_str());
      return 0;
    } else if (arg == "--topology") {
      topology_arg = next_value(i);
    } else if (arg == "--k") {
      config.net.k = static_cast<unsigned>(std::atoi(next_value(i)));
      k_set = true;
    } else if (arg == "--n") {
      config.net.n = static_cast<unsigned>(std::atoi(next_value(i)));
      n_set = true;
    } else if (arg == "--routing") {
      routing_key = next_value(i);
      routing_set = true;
      if (!parse_routing_key(routing_key, config.net.routing)) {
        std::fprintf(stderr, "unknown routing '%s'\n%s", routing_key.c_str(),
                     TopologyRegistry::instance().routing_usage().c_str());
        return 1;
      }
    } else if (arg == "--vcs") {
      config.net.vcs = static_cast<unsigned>(std::atoi(next_value(i)));
    } else if (arg == "--selection") {
      const std::string value = next_value(i);
      if (!parse_selection_key(value, &config.net.selection)) {
        std::fprintf(stderr, "unknown selection policy '%s'\n%s",
                     value.c_str(), selection_usage().c_str());
        return 1;
      }
    } else if (arg == "--misroute") {
      config.net.misroute = true;
    } else if (arg == "--throttle") {
      config.traffic.throttle = std::atof(next_value(i));
      if (config.traffic.throttle <= 0.0 || config.traffic.throttle > 1.0) {
        std::fprintf(stderr, "--throttle must lie in (0, 1]\n");
        return 1;
      }
    } else if (arg == "--pattern") {
      if (!parse_pattern(next_value(i), config.traffic.pattern)) {
        std::fprintf(stderr, "unknown pattern\n");
        return 1;
      }
      pattern_set = true;
    } else if (arg == "--workload") {
      workload_arg = next_value(i);
    } else if (arg == "--load") {
      config.traffic.offered_fraction = std::atof(next_value(i));
    } else if (arg == "--sweep") {
      sweep = true;
    } else if (arg == "--injection") {
      const std::string value = next_value(i);
      if (value == "bernoulli") config.traffic.injection = InjectionKind::kBernoulli;
      else if (value == "bursty") config.traffic.injection = InjectionKind::kBursty;
      else {
        std::fprintf(stderr, "unknown injection process\n");
        return 1;
      }
    } else if (arg == "--burst-factor") {
      config.traffic.burst_factor = std::atof(next_value(i));
    } else if (arg == "--packet-bytes") {
      config.net.packet_bytes = static_cast<unsigned>(std::atoi(next_value(i)));
    } else if (arg == "--buffer-depth") {
      config.net.buffer_depth = static_cast<unsigned>(std::atoi(next_value(i)));
    } else if (arg == "--flit-bytes") {
      config.net.flit_bytes = static_cast<unsigned>(std::atoi(next_value(i)));
    } else if (arg == "--seed") {
      config.traffic.seed = std::strtoull(next_value(i), nullptr, 10);
    } else if (arg == "--warmup") {
      config.timing.warmup_cycles = std::strtoull(next_value(i), nullptr, 10);
    } else if (arg == "--horizon") {
      config.timing.horizon_cycles = std::strtoull(next_value(i), nullptr, 10);
    } else if (arg == "--replications") {
      replications = static_cast<unsigned>(std::atoi(next_value(i)));
    } else if (arg == "--threads") {
      threads = static_cast<unsigned>(std::atoi(next_value(i)));
    } else if (arg == "--serial-threshold") {
      config.serial_fabric_threshold =
          static_cast<unsigned>(std::atoi(next_value(i)));
    } else if (arg == "--csv") {
      csv_path = next_value(i);
    } else if (arg == "--absolute") {
      absolute = true;
    } else if (arg == "--faults") {
      faults_spec = next_value(i);
    } else if (arg == "--fault-rate") {
      fault_rate = std::atof(next_value(i));
      if (fault_rate < 0.0 || fault_rate > 1.0) {
        std::fprintf(stderr, "--fault-rate must lie in [0, 1]\n");
        return 1;
      }
    } else if (arg == "--fault-cycle") {
      fault_cycle = std::strtoull(next_value(i), nullptr, 10);
    } else if (arg == "--drain") {
      config.timing.drain_after_horizon = true;
    } else if (arg == "--obs") {
      config.obs.enabled = true;
    } else if (arg == "--obs-interval") {
      config.obs.sample_interval_cycles =
          std::strtoull(next_value(i), nullptr, 10);
    } else if (arg == "--trace-out") {
      config.obs.trace_out = next_value(i);
      config.obs.enabled = true;
    } else if (arg == "--trace-hops") {
      config.obs.trace_hops = true;
    } else if (arg == "--profile") {
      config.prof.enabled = true;
    } else if (arg == "--flight") {
      config.flight.out = next_value(i);
      config.flight.enabled = true;
    } else if (arg == "--flight-interval") {
      config.flight.interval_cycles = std::strtoull(next_value(i), nullptr, 10);
    } else if (arg == "--flight-capacity") {
      config.flight.capacity = std::strtoull(next_value(i), nullptr, 10);
    } else if (arg == "--no-flight") {
      config.flight.enabled = false;
      config.anomaly.enabled = false;
    } else if (arg == "--heartbeat") {
      config.timing.heartbeat_cycles = std::strtoull(next_value(i), nullptr, 10);
    } else if (arg == "--manifest") {
      manifest_path = next_value(i);
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      usage();
      return 1;
    }
  }

  // Resolve the topology spec against the registry. Unknown families and
  // malformed/unknown parameters are hard errors with a usage listing —
  // never a silent fallback to a default fabric.
  {
    TopoSpec spec;
    std::string error;
    if (!parse_topology_spec(topology_arg, &spec, &error)) {
      std::fprintf(stderr, "bad --topology '%s': %s\n", topology_arg.c_str(),
                   error.c_str());
      return 1;
    }
    if (TopologyRegistry::instance().find(spec.family) == nullptr) {
      std::fprintf(stderr,
                   "unknown topology family '%s'; known families:\n%s",
                   spec.family.c_str(),
                   TopologyRegistry::instance().usage().c_str());
      return 1;
    }
    config.net.topology = spec.family;
    config.net.topo_params = spec.params;
  }
  const TopologyFamily* family =
      TopologyRegistry::instance().find(config.net.topology);

  // Sensible defaults by topology family.
  if (config.net.topology == "tree") {
    if (!k_set) config.net.k = 4;
    if (!n_set) config.net.n = 4;
  }
  if (!routing_set) {
    routing_key = family->default_routing;
    if (!parse_routing_key(routing_key, config.net.routing)) {
      std::fprintf(stderr, "family '%s' has no usable default routing\n",
                   config.net.topology.c_str());
      return 1;
    }
  }
  if (!routing_compatible(*family, routing_key)) {
    std::fprintf(stderr,
                 "--routing %s is not deadlock-free on family '%s'\n%s",
                 routing_key.c_str(), config.net.topology.c_str(),
                 TopologyRegistry::instance().routing_usage().c_str());
    return 1;
  }
  if (config.net.selection == SelectionKind::kStallEwma &&
      config.net.routing != RoutingKind::kEscapeAdaptive) {
    std::fprintf(stderr,
                 "--selection stall scores candidates from escape-channel\n"
                 "stall history and needs --routing escape\n");
    return 1;
  }
  if (config.net.misroute &&
      config.net.routing != RoutingKind::kEscapeAdaptive) {
    std::fprintf(stderr, "--misroute needs --routing escape\n");
    return 1;
  }
  if (config.traffic.throttle > 0.0 &&
      config.net.routing != RoutingKind::kEscapeAdaptive) {
    std::fprintf(stderr,
                 "--throttle needs --routing escape to supply the\n"
                 "escape-channel backpressure signal\n");
    return 1;
  }

  // Probe-build the fabric now: parameter errors (bad sizes, infeasible
  // designs) surface as friendly messages instead of aborting mid-run,
  // and the instance feeds the topo/ provenance metrics below.
  std::unique_ptr<Topology> probe;
  double derived_wire_m = 0.0;
  {
    std::string error;
    probe = TopologyRegistry::instance().build(config.net.topo_spec(), &error);
    if (probe == nullptr) {
      std::fprintf(stderr, "invalid --topology '%s': %s\n",
                   topology_arg.c_str(), error.c_str());
      return 1;
    }
    if (family->clock) {
      DerivedClock derived;
      if (!family->clock(config.net.topo_spec(), config.net.vcs, &derived,
                         &error)) {
        std::fprintf(stderr, "invalid --topology '%s': %s\n",
                     topology_arg.c_str(), error.c_str());
        return 1;
      }
      derived_wire_m = derived.wire_m;
    }
  }

  if (!faults_spec.empty()) {
    auto plan = FaultPlan::parse(faults_spec);
    if (!plan) {
      std::fprintf(stderr, "malformed --faults spec '%s'\n",
                   faults_spec.c_str());
      return 1;
    }
    config.faults = *plan;
  }
  if (fault_rate > 0.0) {
    // Mix the traffic seed so the fault sample is decorrelated from the
    // arrival stream but still fully determined by --seed.
    config.faults.add_random_fraction(
        fault_rate, config.traffic.seed ^ 0x9e3779b97f4a7c15ULL, fault_cycle);
  }

  // Resolve the workload spec against its registry, same discipline as
  // --topology: unknown families and bad parameters are hard errors with
  // a usage listing, and a probe build surfaces cross-parameter problems
  // (servers >= nodes, fanout too wide) before the run starts.
  if (!workload_arg.empty()) {
    std::string error;
    if (!parse_workload_spec(workload_arg, &config.workload, &error)) {
      std::fprintf(stderr, "bad --workload '%s': %s\n", workload_arg.c_str(),
                   error.c_str());
      return 1;
    }
    if (WorkloadRegistry::instance().find(config.workload.family) == nullptr) {
      std::fprintf(stderr, "unknown workload family '%s'; known families:\n%s",
                   config.workload.family.c_str(),
                   WorkloadRegistry::instance().usage().c_str());
      return 1;
    }
    const std::unique_ptr<Workload> workload_probe =
        WorkloadRegistry::instance().build(config.workload,
                                           probe->node_count(),
                                           config.traffic.seed, &error);
    if (workload_probe == nullptr) {
      std::fprintf(stderr, "invalid --workload '%s': %s\n",
                   workload_arg.c_str(), error.c_str());
      return 1;
    }
    if (sweep) {
      std::fprintf(stderr,
                   "--workload paces itself (closed loop) and cannot be "
                   "combined with --sweep\n");
      return 1;
    }
    if (pattern_set) {
      std::fprintf(stderr,
                   "--workload chooses request targets itself and cannot be "
                   "combined with --pattern\n");
      return 1;
    }
  }

  if (sweep && config.obs.trace_enabled()) {
    std::fprintf(stderr,
                 "--trace-out writes one trace file and cannot be combined "
                 "with --sweep\n");
    return 1;
  }
  if (!config.flight.out.empty() && (sweep || replications > 1)) {
    std::fprintf(stderr,
                 "--flight writes one ring dump and cannot be combined with "
                 "--sweep or --replications\n");
    return 1;
  }

  const std::vector<double> loads =
      sweep ? default_load_grid()
            : std::vector<double>{config.traffic.offered_fraction};

  std::printf("smartsim: %s, %s traffic, %s arrivals, %u-byte packets\n\n",
              config.net.description().c_str(),
              to_string(config.traffic.pattern).c_str(),
              to_string(config.traffic.injection).c_str(),
              config.net.packet_bytes);

  std::string command_line;
  for (int i = 0; i < argc; ++i) {
    if (i > 0) command_line += ' ';
    command_line += argv[i];
  }
  if (manifest_path.empty() && !csv_path.empty()) {
    manifest_path = manifest_path_for(csv_path);
  }

  if (replications > 1) {
    const auto points = run_replicated(config, loads, replications, threads);
    Table table = replicated_table(points);
    std::printf("%s", table.to_text().c_str());
    if (!csv_path.empty() && !table.write_csv(csv_path)) {
      std::fprintf(stderr, "failed to write %s\n", csv_path.c_str());
      return 1;
    }
    if (!manifest_path.empty()) {
      // Replicated runs aggregate across seeds; the manifest records the
      // provenance and configuration without a per-run registry snapshot.
      ManifestInfo info;
      info.producer = "smartsim_cli";
      info.command_line = command_line;
      info.config = echo_config(config, scale_for(config.net).clock_ns);
      std::string error;
      if (!write_manifest(manifest_path, info, &error)) {
        std::fprintf(stderr, "%s\n", error.c_str());
        return 1;
      }
      std::printf("wrote %s\n", manifest_path.c_str());
    }
    return 0;
  }

  const auto results = run_sweep(config, loads, threads);

  Table table(absolute
                  ? std::vector<std::string>{"offered (frac)",
                                             "offered (bits/ns)",
                                             "accepted (bits/ns)",
                                             "latency (ns)", "p99 (ns)",
                                             "deadlock"}
                  : std::vector<std::string>{"offered (frac)",
                                             "accepted (frac)",
                                             "latency (cycles)",
                                             "p99 (cycles)", "hops",
                                             "deadlock"});
  const NormalizedScale scale = scale_for(config.net);
  bool any_deadlock = false;
  bool any_unroutable = false;
  for (const SimulationResult& point : results) {
    any_deadlock |= point.deadlocked;
    any_unroutable |= point.unroutable_packets > 0 ||
                      point.stall_verdict == StallVerdict::kFaultStall;
    table.begin_row();
    if (absolute) {
      table.add_cell(point.offered_fraction, 3)
          .add_cell(to_bits_per_ns(point.offered_flits_per_node_cycle,
                                   scale.nodes, scale.flit_bytes,
                                   scale.clock_ns),
                    1)
          .add_cell(to_bits_per_ns(point.accepted_flits_per_node_cycle,
                                   scale.nodes, scale.flit_bytes,
                                   scale.clock_ns),
                    1)
          .add_cell(point.latency_cycles.count() > 0
                        ? format_double(to_ns(point.latency_cycles.mean(),
                                              scale.clock_ns),
                                        1)
                        : std::string{"-"})
          .add_cell(point.latency_cycles.count() > 0
                        ? format_double(to_ns(point.latency_percentile(0.99),
                                              scale.clock_ns),
                                        1)
                        : std::string{"-"});
    } else {
      table.add_cell(point.offered_fraction, 3)
          .add_cell(point.accepted_fraction, 3)
          .add_cell(point.latency_cycles.count() > 0
                        ? format_double(point.latency_cycles.mean(), 1)
                        : std::string{"-"})
          .add_cell(point.latency_cycles.count() > 0
                        ? format_double(point.latency_percentile(0.99), 1)
                        : std::string{"-"})
          .add_cell(point.hops.count() > 0
                        ? format_double(point.hops.mean(), 2)
                        : std::string{"-"});
    }
    table.add_cell(point.deadlocked ? std::string{"YES"} : std::string{"no"});
  }
  std::printf("%s", table.to_text().c_str());

  if (!config.faults.empty()) {
    std::printf("\nfault plan: %s\n", config.faults.to_string().c_str());
    for (const SimulationResult& point : results) {
      std::printf(
          "load %.3f: verdict %s, %llu unroutable packet(s), "
          "%llu flit(s) dropped, %u fault(s) active at end\n",
          point.offered_fraction, to_string(point.stall_verdict),
          static_cast<unsigned long long>(point.unroutable_packets),
          static_cast<unsigned long long>(point.dropped_flits),
          point.active_faults_end);
      for (const FaultEpoch& epoch : point.fault_epochs) {
        std::printf(
            "  epoch [%llu, %llu] %u fault(s): accepted %.4f flits/node/"
            "cycle, latency %.1f cycles, %llu dropped packet(s)\n",
            static_cast<unsigned long long>(epoch.start_cycle),
            static_cast<unsigned long long>(epoch.end_cycle),
            epoch.active_faults, epoch.accepted_flits_per_node_cycle,
            epoch.mean_latency_cycles,
            static_cast<unsigned long long>(epoch.dropped_packets));
      }
      if (config.timing.drain_after_horizon) {
        std::printf(
            "  drain: %llu cycle(s), %s, %llu packet(s) delivered while "
            "draining\n",
            static_cast<unsigned long long>(point.drain_cycles),
            point.drained_clean ? "clean" : "packets left wedged",
            static_cast<unsigned long long>(point.drain_delivered_packets));
      }
    }
  }

  if (config.obs.enabled) {
    for (const SimulationResult& point : results) {
      const ObsReport& obs = point.obs;
      std::printf("\nobservability (load %.3f): %llu stall event(s)\n",
                  point.offered_fraction,
                  static_cast<unsigned long long>(obs.stalls.total()));
      for (std::size_t c = 0; c < kStallCauseCount; ++c) {
        std::printf("  %-16s %llu\n",
                    to_string(static_cast<StallCause>(c)),
                    static_cast<unsigned long long>(obs.stalls.by_cause[c]));
      }
      if (obs.switch_frozen_cycles > 0) {
        std::printf("  dead-switch frozen cycles: %llu\n",
                    static_cast<unsigned long long>(obs.switch_frozen_cycles));
      }
      if (obs.series.tick_count() > 0) {
        std::printf("  hottest links (mean utilization over %llu samples):\n",
                    static_cast<unsigned long long>(obs.series.tick_count()));
        for (std::size_t link : obs.series.top_utilized(5)) {
          const ObsLink& l = obs.series.links[link];
          if (l.kind == ObsLinkKind::kInjection) {
            std::printf("    node %-4u inject       %.3f\n", l.node,
                        obs.series.mean_utilization(link));
          } else {
            std::printf("    sw %-4u port %-3u %-6s %.3f\n", l.sw, l.port,
                        to_string(l.kind), obs.series.mean_utilization(link));
          }
        }
      }
      if (config.obs.trace_enabled()) {
        std::printf("  trace: %llu event(s) %s %s\n",
                    static_cast<unsigned long long>(obs.trace_events),
                    obs.trace_written ? "written to" : "FAILED to write",
                    config.obs.trace_out.c_str());
        if (!obs.trace_written) return 1;
      }
    }
  }

  // Anomaly watchdog verdicts: quiet runs stay quiet; a trip prints the
  // detector, the trigger cycle, and the measured-vs-threshold pair.
  for (const SimulationResult& point : results) {
    if (!point.anomaly_enabled || !point.anomaly_triggered()) continue;
    std::printf("\nANOMALY (load %.3f):\n", point.offered_fraction);
    for (const AnomalyVerdict& v : point.anomaly_verdicts) {
      if (!v.triggered) continue;
      std::printf("  %-20s cycle %-10llu value %.3f threshold %.3f  %s\n",
                  to_string(v.kind),
                  static_cast<unsigned long long>(v.cycle), v.value,
                  v.threshold, v.detail.c_str());
    }
  }

  // Latency percentiles: the paper reports averages, but saturation shows
  // in the tail first (the sweep table already carries p99 per load).
  if (results.size() == 1 && results.front().latency_cycles.count() > 0) {
    const SimulationResult& point = results.front();
    std::printf(
        "\nlatency percentiles: p50 %.1f, p95 %.1f, p99 %.1f cycles "
        "(%llu packets)\n",
        point.latency_percentile(0.50), point.latency_percentile(0.95),
        point.latency_percentile(0.99),
        static_cast<unsigned long long>(point.latency_cycles.count()));
  }

  // Workload service metrics: what a user of the fabric saw — request
  // completion latency (source queueing included), goodput and fairness —
  // next to the flit-level numbers above.
  if (results.size() == 1 && results.front().workload.enabled) {
    const WorkloadReport& w = results.front().workload;
    std::printf("\nworkload %s: %llu client(s), %llu server(s)\n",
                w.family.c_str(),
                static_cast<unsigned long long>(w.clients),
                static_cast<unsigned long long>(w.servers));
    std::printf(
        "  requests: %llu issued, %llu completed, %llu dropped, "
        "%llu outstanding at end\n",
        static_cast<unsigned long long>(w.requests_issued),
        static_cast<unsigned long long>(w.requests_completed),
        static_cast<unsigned long long>(w.requests_dropped),
        static_cast<unsigned long long>(w.outstanding_end));
    if (w.completion_latency.total() > 0) {
      std::printf(
          "  completion latency: p50 %.1f, p95 %.1f, p99 %.1f cycles "
          "(%llu in window)\n",
          w.completion_percentile(0.50), w.completion_percentile(0.95),
          w.completion_percentile(0.99),
          static_cast<unsigned long long>(w.completion_latency.total()));
    }
    std::printf(
        "  goodput %.3f req/kcycle/client, fairness (Jain) %.3f, "
        "outstanding mean %.2f req/client\n",
        w.goodput, w.fairness_jain, w.outstanding_mean);
    if (w.backlog_end > 0) {
      std::printf("  backlog at end: %llu request(s) above the NICs\n",
                  static_cast<unsigned long long>(w.backlog_end));
    }
    if (w.drain_completed > 0) {
      std::printf("  drain: %llu request(s) completed while draining\n",
                  static_cast<unsigned long long>(w.drain_completed));
    }
  }

  if (config.prof.enabled) {
    for (const SimulationResult& point : results) {
      const ProfileReport& prof = point.profile;
      std::printf(
          "\nprofile (load %.3f): fused-path hit rate %.3f over %llu "
          "cycle(s)\n",
          point.offered_fraction, prof.fused_hit_rate(),
          static_cast<unsigned long long>(prof.cycles));
      for (std::size_t p = 0; p < kProfPhaseCount; ++p) {
        const PhaseProfile& phase = prof.phases[p];
        if (phase.ns == 0) continue;
        std::printf("  %-9s %5.1f%%  %llu ns\n",
                    to_string(static_cast<ProfPhase>(p)), phase.share * 100.0,
                    static_cast<unsigned long long>(phase.ns));
      }
      std::printf(
          "  active sets: switches mean %.3f max %llu, nics mean %.3f max "
          "%llu\n",
          prof.active_switch_fraction_mean,
          static_cast<unsigned long long>(prof.active_switches_max),
          prof.active_nic_fraction_mean,
          static_cast<unsigned long long>(prof.active_nics_max));
      std::printf(
          "  lane store: high water %llu of %llu flit slot(s)\n",
          static_cast<unsigned long long>(prof.lane_flits_high_water),
          static_cast<unsigned long long>(prof.lane_capacity_flits));
      std::printf(
          "  work: %llu packet(s) generated, %llu link flit(s), %llu "
          "header(s) routed, %llu crossbar flit(s), %llu credit ack(s)\n",
          static_cast<unsigned long long>(prof.generated_packets),
          static_cast<unsigned long long>(prof.link_flits),
          static_cast<unsigned long long>(prof.routed_headers),
          static_cast<unsigned long long>(prof.crossbar_flits),
          static_cast<unsigned long long>(prof.credit_acks));
    }
  }

  // Engine-path echo (also recorded in the manifest): which pipeline ran
  // and why — threads are a budget, not a demand.
  if (!results.empty()) {
    std::printf("\nengine: %s — %s\n",
                results.front().engine_parallel ? "parallel" : "serial",
                results.front().engine_path_reason.c_str());
  }

  // Simulator self-metrics: the perf trajectory of the simulator itself.
  {
    double wall = 0.0;
    double cycles = 0.0;
    double flits = 0.0;
    for (const SimulationResult& point : results) {
      wall += point.sim_wall_seconds;
      cycles += point.sim_cycles_per_second * point.sim_wall_seconds;
      flits += point.sim_mflits_per_second * point.sim_wall_seconds;
    }
    if (wall > 0.0) {
      std::printf(
          "\nsimulator: %.2fs wall, %.2f Mcycles/s, %.2f Mflits/s\n", wall,
          cycles / wall / 1e6, flits / wall);
    }
  }

  if (!csv_path.empty()) {
    if (table.write_csv(csv_path)) {
      std::printf("\nwrote %s\n", csv_path.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", csv_path.c_str());
      return 1;
    }
  }

  if (!manifest_path.empty()) {
    MetricsRegistry registry;
    if (results.size() == 1) {
      register_run_metrics(registry, results.front());
    } else {
      // Sweeps snapshot every point, namespaced by offered load so the
      // regression tool diffs each point against its counterpart.
      for (const SimulationResult& point : results) {
        MetricsRegistry slice;
        register_run_metrics(slice, point);
        char prefix[32];
        std::snprintf(prefix, sizeof prefix, "load=%.3f/",
                      point.offered_fraction);
        for (const Metric& m : slice.metrics()) {
          switch (m.kind) {
            case MetricKind::kCounter:
              registry.counter(prefix + m.name,
                               static_cast<std::uint64_t>(m.value), m.unit);
              break;
            case MetricKind::kGauge:
              registry.gauge(prefix + m.name, m.value, m.unit);
              break;
            case MetricKind::kHistogram:
              registry.histogram(prefix + m.name, m.hist, m.unit);
              break;
          }
        }
      }
    }
    // Fabric provenance (topo/ namespace): deterministic, so the report
    // tool strict-diffs it — a changed generator shows up as a regression.
    register_topology_metrics(registry, *probe, scale.clock_ns,
                              derived_wire_m);
    double wall = 0.0;
    for (const SimulationResult& point : results) {
      wall += point.sim_wall_seconds;
    }
    ManifestInfo info;
    info.producer = "smartsim_cli";
    info.command_line = command_line;
    info.config = echo_config(config, scale.clock_ns);
    // The engine path (parallel/serial + reason) lives in the config echo,
    // which the report tool never diffs: it legitimately differs between
    // --threads values while the metrics stay bit-identical.
    {
      json::Value engine_path = json::Value::object();
      engine_path.set("parallel",
                      json::Value(results.front().engine_parallel));
      engine_path.set(
          "shards",
          json::Value(static_cast<double>(results.front().engine_shards)));
      engine_path.set("reason",
                      json::Value(results.front().engine_path_reason));
      info.config.set("engine_path", std::move(engine_path));
    }
    info.wall_seconds = wall;
    info.registry = &registry;
    std::string error;
    if (!write_manifest(manifest_path, info, &error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    std::printf("wrote %s\n", manifest_path.c_str());
  }

  // Flight-recorder dump: an explicit --flight path always writes; with
  // no explicit path the ring is dumped next to the manifest when an
  // anomaly fired, so the post-mortem window survives the process.
  if (results.size() == 1 && results.front().flight.enabled) {
    const SimulationResult& point = results.front();
    std::string flight_path = config.flight.out;
    if (flight_path.empty() && point.anomaly_triggered() &&
        !manifest_path.empty()) {
      flight_path = manifest_path + ".flight.json";
    }
    if (!flight_path.empty()) {
      std::string error;
      if (!write_flight(flight_path, point.flight, &error)) {
        std::fprintf(stderr, "%s\n", error.c_str());
        return 1;
      }
      std::printf("wrote %s (%llu snapshot(s) kept of %llu recorded)\n",
                  flight_path.c_str(),
                  static_cast<unsigned long long>(point.flight.snapshots.size()),
                  static_cast<unsigned long long>(point.flight.total_recorded));
    }
  }

  if (any_deadlock) return 2;
  if (any_unroutable) return 3;
  return 0;
}
