// Micro-benchmarks of the simulator's building blocks (google-benchmark):
// simulation speed in cycles/second, topology construction, pattern
// generation and RNG throughput. These guard against performance
// regressions in the hot per-cycle loops.
#include <benchmark/benchmark.h>

#include <cstring>
#include <filesystem>
#include <string>

#include "core/network.hpp"
#include "obs/manifest.hpp"
#include "topology/kary_ncube.hpp"
#include "topology/kary_ntree.hpp"
#include "traffic/pattern.hpp"
#include "util/rng.hpp"

namespace {

using namespace smart;

void BM_RngNext(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next());
  }
}
BENCHMARK(BM_RngNext);

void BM_RngBelow(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.below(255));
  }
}
BENCHMARK(BM_RngBelow);

void BM_CubeConstruction(benchmark::State& state) {
  for (auto _ : state) {
    KaryNCube cube(16, 2);
    benchmark::DoNotOptimize(cube.node_count());
  }
}
BENCHMARK(BM_CubeConstruction);

void BM_TreeConstruction(benchmark::State& state) {
  for (auto _ : state) {
    KaryNTree tree(4, 4);
    benchmark::DoNotOptimize(tree.node_count());
  }
}
BENCHMARK(BM_TreeConstruction);

void BM_TreePortPeerAll(benchmark::State& state) {
  const KaryNTree tree(4, 4);
  for (auto _ : state) {
    std::uint64_t acc = 0;
    for (SwitchId s = 0; s < tree.switch_count(); ++s) {
      for (PortId p = 0; p < tree.ports_per_switch(); ++p) {
        acc += tree.port_peer(s, p).id;
      }
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_TreePortPeerAll);

void BM_UniformPatternDraw(benchmark::State& state) {
  const UniformPattern pattern(256);
  Rng rng(1);
  NodeId src = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pattern.destination(src, rng));
    src = (src + 1) % 256;
  }
}
BENCHMARK(BM_UniformPatternDraw);

SimConfig simulation_config(const std::string& topology, double load) {
  SimConfig config;
  if (topology == std::string("cube")) {
    config.net = paper_cube_spec(RoutingKind::kCubeDuato);
  } else {
    config.net = paper_tree_spec(4);
  }
  config.traffic.pattern = PatternKind::kUniform;
  config.traffic.offered_fraction = load;
  return config;
}

void BM_CubeSimulationCycles(benchmark::State& state) {
  Network network(simulation_config(std::string("cube"), 0.5));
  for (auto _ : state) {
    network.step();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["cycles/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CubeSimulationCycles)->Iterations(4000);

void BM_TreeSimulationCycles(benchmark::State& state) {
  Network network(simulation_config(std::string("tree"), 0.5));
  for (auto _ : state) {
    network.step();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["cycles/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TreeSimulationCycles)->Iterations(4000);

// The paper's "normal traffic" region (offered load <= 1/3 of capacity) is
// where the long sweeps spend most of their points; these two benches guard
// the active-set scheduler's payoff there (and the idle-fabric cost at 10 %).
void BM_CubeSimulationCyclesNormalLoad(benchmark::State& state) {
  Network network(simulation_config(std::string("cube"), 1.0 / 3.0));
  for (auto _ : state) {
    network.step();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["cycles/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CubeSimulationCyclesNormalLoad)->Iterations(4000);

void BM_CubeSimulationCyclesLowLoad(benchmark::State& state) {
  Network network(simulation_config(std::string("cube"), 0.1));
  for (auto _ : state) {
    network.step();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["cycles/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CubeSimulationCyclesLowLoad)->Iterations(4000);

void BM_TreeSimulationCyclesNormalLoad(benchmark::State& state) {
  Network network(simulation_config(std::string("tree"), 1.0 / 3.0));
  for (auto _ : state) {
    network.step();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["cycles/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TreeSimulationCyclesNormalLoad)->Iterations(4000);

void BM_TreeSimulationCyclesLowLoad(benchmark::State& state) {
  Network network(simulation_config(std::string("tree"), 0.1));
  for (auto _ : state) {
    network.step();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["cycles/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TreeSimulationCyclesLowLoad)->Iterations(4000);

// The engine's sharded pipeline on the 256-node paper configs near
// saturation (load 0.5), at 1/2/4 engine threads. Results are
// bit-identical across the argument (test_engine_threads pins that);
// these rows measure only the speedup. UseRealTime: the work happens on
// the worker team, so CPU time of the calling thread is meaningless.
// Expect >= 1.5x cycles/s at 4 threads on a machine with >= 4 free
// cores; on fewer cores the rows degrade gracefully but measure
// oversubscription, not the pipeline.
void BM_CubeSimulationCyclesThreaded(benchmark::State& state) {
  SimConfig config = simulation_config(std::string("cube"), 0.5);
  config.engine_threads = static_cast<unsigned>(state.range(0));
  Network network(config);
  for (auto _ : state) {
    network.step();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["cycles/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CubeSimulationCyclesThreaded)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Iterations(4000)
    ->UseRealTime();

void BM_TreeSimulationCyclesThreaded(benchmark::State& state) {
  SimConfig config = simulation_config(std::string("tree"), 0.5);
  config.engine_threads = static_cast<unsigned>(state.range(0));
  Network network(config);
  for (auto _ : state) {
    network.step();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["cycles/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TreeSimulationCyclesThreaded)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Iterations(4000)
    ->UseRealTime();

// The three scenarios that used to force the serial fallback and now run
// on the sharded pipeline: randomized routing (per-switch RNG streams),
// a fault plan (staged drops), and trace capture (staged hop events).
// The Arg(1) rows double as the staging-overhead baseline: the serial
// pipeline takes none of the staging paths, so Arg(4)/Arg(1) is the
// end-to-end win including the merge cost.
void BM_ValiantSimulationCyclesThreaded(benchmark::State& state) {
  SimConfig config = simulation_config(std::string("cube"), 0.3);
  config.net.routing = RoutingKind::kCubeValiant;
  config.engine_threads = static_cast<unsigned>(state.range(0));
  Network network(config);
  for (auto _ : state) {
    network.step();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["cycles/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ValiantSimulationCyclesThreaded)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Iterations(4000)
    ->UseRealTime();

void BM_FaultedSimulationCyclesThreaded(benchmark::State& state) {
  SimConfig config = simulation_config(std::string("cube"), 0.5);
  // Faults bracketing the measured window so the drop/drain paths stay
  // active for most iterations.
  config.faults.add_link(0, 0, 200, 3000);
  config.faults.add_switch(200, 400, 3500);
  config.engine_threads = static_cast<unsigned>(state.range(0));
  Network network(config);
  for (auto _ : state) {
    network.step();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["cycles/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FaultedSimulationCyclesThreaded)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Iterations(4000)
    ->UseRealTime();

void BM_TracedSimulationCyclesThreaded(benchmark::State& state) {
  SimConfig config = simulation_config(std::string("cube"), 0.5);
  config.obs.enabled = true;
  config.obs.trace_hops = true;
  // step() only collects events in memory; the file is written by run(),
  // which this bench never calls — the path just arms trace_enabled().
  config.obs.trace_out = "/dev/null";
  config.engine_threads = static_cast<unsigned>(state.range(0));
  Network network(config);
  for (auto _ : state) {
    network.step();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["cycles/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TracedSimulationCyclesThreaded)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Iterations(4000)
    ->UseRealTime();

}  // namespace

// Custom main (instead of benchmark_main) so the run leaves a manifest
// next to google-benchmark's own JSON report: the timings themselves are
// benchmark's, but the provenance (git describe, build type, flags) must
// be recorded like every other bench in run_benches.sh.
int main(int argc, char** argv) {
  std::string out_dir = "bench_out";
  std::string bench_out_arg;
  for (int i = 1; i < argc; ++i) {
    const char* prefix = "--benchmark_out=";
    if (std::strncmp(argv[i], prefix, std::strlen(prefix)) == 0) {
      bench_out_arg = argv[i] + std::strlen(prefix);
      const std::filesystem::path parent =
          std::filesystem::path(bench_out_arg).parent_path();
      if (!parent.empty()) out_dir = parent.string();
    }
  }

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;

  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  smart::ManifestInfo info;
  info.producer = "bench_micro";
  info.command_line =
      bench_out_arg.empty() ? std::string{"bench_micro"}
                            : "bench_micro --benchmark_out=" + bench_out_arg;
  smart::json::Value config = smart::json::Value::object();
  config.set("bench", smart::json::Value(std::string("bench_micro")));
  info.config = std::move(config);
  std::string error;
  if (!smart::write_manifest(out_dir + "/MANIFEST_bench_micro.json", info,
                             &error)) {
    std::fprintf(stderr, "warning: %s\n", error.c_str());
  }

  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
