// Micro-benchmarks of the simulator's building blocks (google-benchmark):
// simulation speed in cycles/second, topology construction, pattern
// generation and RNG throughput. These guard against performance
// regressions in the hot per-cycle loops.
#include <benchmark/benchmark.h>

#include "core/network.hpp"
#include "topology/kary_ncube.hpp"
#include "topology/kary_ntree.hpp"
#include "traffic/pattern.hpp"
#include "util/rng.hpp"

namespace {

using namespace smart;

void BM_RngNext(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next());
  }
}
BENCHMARK(BM_RngNext);

void BM_RngBelow(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.below(255));
  }
}
BENCHMARK(BM_RngBelow);

void BM_CubeConstruction(benchmark::State& state) {
  for (auto _ : state) {
    KaryNCube cube(16, 2);
    benchmark::DoNotOptimize(cube.node_count());
  }
}
BENCHMARK(BM_CubeConstruction);

void BM_TreeConstruction(benchmark::State& state) {
  for (auto _ : state) {
    KaryNTree tree(4, 4);
    benchmark::DoNotOptimize(tree.node_count());
  }
}
BENCHMARK(BM_TreeConstruction);

void BM_TreePortPeerAll(benchmark::State& state) {
  const KaryNTree tree(4, 4);
  for (auto _ : state) {
    std::uint64_t acc = 0;
    for (SwitchId s = 0; s < tree.switch_count(); ++s) {
      for (PortId p = 0; p < tree.ports_per_switch(); ++p) {
        acc += tree.port_peer(s, p).id;
      }
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_TreePortPeerAll);

void BM_UniformPatternDraw(benchmark::State& state) {
  const UniformPattern pattern(256);
  Rng rng(1);
  NodeId src = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pattern.destination(src, rng));
    src = (src + 1) % 256;
  }
}
BENCHMARK(BM_UniformPatternDraw);

SimConfig simulation_config(TopologyKind topology, double load) {
  SimConfig config;
  if (topology == TopologyKind::kCube) {
    config.net = paper_cube_spec(RoutingKind::kCubeDuato);
  } else {
    config.net = paper_tree_spec(4);
  }
  config.traffic.pattern = PatternKind::kUniform;
  config.traffic.offered_fraction = load;
  return config;
}

void BM_CubeSimulationCycles(benchmark::State& state) {
  Network network(simulation_config(TopologyKind::kCube, 0.5));
  for (auto _ : state) {
    network.step();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["cycles/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CubeSimulationCycles)->Iterations(4000);

void BM_TreeSimulationCycles(benchmark::State& state) {
  Network network(simulation_config(TopologyKind::kTree, 0.5));
  for (auto _ : state) {
    network.step();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["cycles/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TreeSimulationCycles)->Iterations(4000);

// The paper's "normal traffic" region (offered load <= 1/3 of capacity) is
// where the long sweeps spend most of their points; these two benches guard
// the active-set scheduler's payoff there (and the idle-fabric cost at 10 %).
void BM_CubeSimulationCyclesNormalLoad(benchmark::State& state) {
  Network network(simulation_config(TopologyKind::kCube, 1.0 / 3.0));
  for (auto _ : state) {
    network.step();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["cycles/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CubeSimulationCyclesNormalLoad)->Iterations(4000);

void BM_CubeSimulationCyclesLowLoad(benchmark::State& state) {
  Network network(simulation_config(TopologyKind::kCube, 0.1));
  for (auto _ : state) {
    network.step();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["cycles/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CubeSimulationCyclesLowLoad)->Iterations(4000);

void BM_TreeSimulationCyclesNormalLoad(benchmark::State& state) {
  Network network(simulation_config(TopologyKind::kTree, 1.0 / 3.0));
  for (auto _ : state) {
    network.step();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["cycles/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TreeSimulationCyclesNormalLoad)->Iterations(4000);

void BM_TreeSimulationCyclesLowLoad(benchmark::State& state) {
  Network network(simulation_config(TopologyKind::kTree, 0.1));
  for (auto _ : state) {
    network.step();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["cycles/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TreeSimulationCyclesLowLoad)->Iterations(4000);

}  // namespace
