// Regenerates Figure 5 of the paper: communication performance of a 4-ary
// 4-tree (256 nodes) with adaptive routing and 1, 2 and 4 virtual channels,
// in Chaos Normal Form — accepted bandwidth and network latency against the
// offered bandwidth (fractions of the uniform-traffic capacity), for the
// uniform, complement, transpose and bit-reversal patterns (panels a-h).
//
// Paper reference points (§8):
//   uniform    saturates at 36 % (1 vc), 55 % (2 vc), 72 % (4 vc)
//   complement saturates around 95 % for ALL flow-control variants
//              (congestion-free on the descending phase)
//   transpose  saturates at 33 %, 60 %, 78 %
//   bit rev.   similar to transpose
#include "bench_common.hpp"

int main(int argc, char** argv) {
  smart::benchtool::init_cli(argc, argv);
  using namespace smart;
  using namespace smart::benchtool;

  const auto loads = figure_load_grid();
  std::printf("Figure 5 — 4-ary 4-tree, adaptive routing, 1/2/4 virtual "
              "channels (CNF)\n");

  std::vector<Curve> all_summary;
  for (PatternKind pattern : paper_patterns()) {
    const std::string pattern_name = to_string(pattern);
    std::vector<Curve> curves;
    for (unsigned vcs : {1U, 2U, 4U}) {
      curves.push_back(run_curve(std::to_string(vcs) + " vc",
                                 figure_config(paper_tree_spec(vcs), pattern),
                                 loads));
      all_summary.push_back(curves.back());
      all_summary.back().label = pattern_name + ", " + curves.back().label;
    }

    print_section("Accepted vs. offered bandwidth (" + pattern_name +
                  " traffic)");
    const Table accepted = cnf_accepted_table(curves);
    std::printf("%s", accepted.to_text().c_str());
    write_csv(accepted, "fig5_" + slug(pattern_name) + "_accepted");

    print_section("Network latency vs. offered bandwidth (" + pattern_name +
                  " traffic), cycles");
    const Table latency = cnf_latency_table(curves);
    std::printf("%s", latency.to_text().c_str());
    write_csv(latency, "fig5_" + slug(pattern_name) + "_latency");
  }

  print_section("Saturation summary (paper §8: uniform 36/55/72 %, "
                "complement ~95 % for all, transpose 33/60/78 %)");
  const Table summary = saturation_summary_table(all_summary);
  std::printf("%s", summary.to_text().c_str());
  write_csv(summary, "fig5_saturation_summary");
  return 0;
}
