// Shared plumbing for the figure-reproduction benches: the paper's four
// traffic patterns, the offered-load grid, CSV emission, and the optional
// machine-readable JSON report.
//
// Each bench prints the tables that correspond to one figure of the paper
// and writes the same data as CSV files under ./bench_out/ for plotting.
// With `--json <path>` (parsed by init_cli) every table the bench emits is
// additionally collected into one JSON document at <path>, so scripts can
// consume a whole bench run without scraping stdout or globbing CSVs.
// Set SMARTSIM_QUICK=1 to run a coarser load grid.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/network.hpp"
#include "obs/manifest.hpp"
#include "obs/registry.hpp"

namespace smart::benchtool {

/// Output directory for CSVs, JSON reports and manifests. Overridable via
/// SMARTSIM_BENCH_OUT so CI can produce two runs side by side for
/// tools/smartsim_report.
inline const std::string& bench_out_dir() {
  static const std::string dir = [] {
    const char* env = std::getenv("SMARTSIM_BENCH_OUT");
    return std::string(env != nullptr && *env != '\0' ? env : "bench_out");
  }();
  return dir;
}

/// Accumulates every table of the running bench and rewrites the JSON
/// document after each addition, so a bench aborting midway still leaves
/// the tables it finished on disk.
class JsonReport {
 public:
  static JsonReport& instance() {
    static JsonReport report;
    return report;
  }

  /// Enables the report: `bench` names the producing binary, `path` the
  /// output file. A run manifest (MANIFEST_<bench>.json next to `path`)
  /// is maintained alongside the report.
  void enable(std::string bench, std::string path) {
    bench_ = std::move(bench);
    path_ = std::move(path);
    start_ = std::chrono::steady_clock::now();
    const std::filesystem::path parent =
        std::filesystem::path(path_).parent_path();
    manifest_path_ =
        (parent / ("MANIFEST_" + bench_ + ".json")).string();
    flush();
  }

  [[nodiscard]] bool enabled() const noexcept { return !path_.empty(); }

  void add(const std::string& name, const Table& table) {
    if (!enabled()) return;
    note_table(name, table);
    std::string json = "    {\"name\": " + quote(name) + ", \"columns\": [";
    for (std::size_t c = 0; c < table.column_count(); ++c) {
      if (c > 0) json += ", ";
      json += quote(table.header(c));
    }
    json += "], \"rows\": [";
    for (std::size_t r = 0; r < table.row_count(); ++r) {
      if (r > 0) json += ", ";
      json += '[';
      for (std::size_t c = 0; c < table.column_count(); ++c) {
        if (c > 0) json += ", ";
        json += quote(table.cell(r, c));
      }
      json += ']';
    }
    json += "]}";
    tables_.push_back(std::move(json));
    flush();
  }

  /// Registers a wall-clock gauge under the advisory time/ namespace of
  /// the bench manifest: the regression tool warns on drift instead of
  /// failing, which is the right contract for machine-dependent rates
  /// such as simulated cycles per second.
  void advisory_gauge(const std::string& name, double value,
                      std::string unit = {}) {
    if (!enabled()) return;
    registry_.gauge("time/" + name, value, std::move(unit));
    write_run_manifest();
  }

 private:
  /// Snapshots the table's last row (its highest-load / final point) into
  /// the manifest's metric registry as `bench/<table>/<column>` gauges.
  /// Every tabulated bench value is a deterministic simulation output, so
  /// the regression tool can hold them to the strict threshold.
  void note_table(const std::string& name, const Table& table) {
    if (table.row_count() == 0) return;
    const std::size_t row = table.row_count() - 1;
    for (std::size_t c = 0; c < table.column_count(); ++c) {
      const std::string& cell = table.cell(row, c);
      char* end = nullptr;
      const double value = std::strtod(cell.c_str(), &end);
      if (end == cell.c_str() || *end != '\0') continue;  // non-numeric
      std::string column;
      for (char ch : table.header(c)) column += (ch == ' ') ? '_' : ch;
      registry_.gauge("bench/" + name + "/" + column, value);
    }
  }

  static std::string quote(const std::string& value) {
    std::string out = "\"";
    for (char c : value) {
      if (c == '"' || c == '\\') {
        out += '\\';
        out += c;
      } else if (c == '\n') {
        out += "\\n";
      } else {
        out += c;
      }
    }
    out += '"';
    return out;
  }

  void flush() const {
    std::error_code ec;
    const std::filesystem::path parent =
        std::filesystem::path(path_).parent_path();
    if (!parent.empty()) std::filesystem::create_directories(parent, ec);
    std::ofstream out(path_, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "warning: cannot write %s\n", path_.c_str());
      return;
    }
    out << "{\n  \"bench\": " << quote(bench_) << ",\n  \"tables\": [\n";
    for (std::size_t i = 0; i < tables_.size(); ++i) {
      out << tables_[i] << (i + 1 < tables_.size() ? ",\n" : "\n");
    }
    out << "  ]\n}\n";
    write_run_manifest();
  }

  void write_run_manifest() const {
    json::Value config = json::Value::object();
    config.set("bench", json::Value(bench_));
    config.set("quick_mode", json::Value(quick_mode()));
    ManifestInfo info;
    info.producer = bench_;
    info.command_line = bench_ + " --json " + path_;
    info.config = std::move(config);
    info.wall_seconds = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start_)
                            .count();
    info.registry = &registry_;
    std::string error;
    if (!write_manifest(manifest_path_, info, &error)) {
      std::fprintf(stderr, "warning: %s\n", error.c_str());
    }
  }

  std::string bench_;
  std::string path_;
  std::string manifest_path_;
  std::chrono::steady_clock::time_point start_{};
  MetricsRegistry registry_;
  std::vector<std::string> tables_;
};

/// Parses the shared bench command line: `--json <path>` turns on the
/// JSON report. Unknown flags are rejected so typos fail loudly.
inline void init_cli(int argc, char** argv) {
  const std::string bench =
      argc > 0 ? std::filesystem::path(argv[0]).filename().string()
               : std::string{"bench"};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      JsonReport::instance().enable(bench, argv[++i]);
    } else {
      std::fprintf(stderr, "usage: %s [--json <path>]\n",
                   argc > 0 ? argv[0] : "bench");
      std::exit(1);
    }
  }
}

inline const std::vector<PatternKind>& paper_patterns() {
  static const std::vector<PatternKind> patterns{
      PatternKind::kUniform,
      PatternKind::kComplement,
      PatternKind::kTranspose,
      PatternKind::kBitReversal,
  };
  return patterns;
}

/// The offered-load grid used by the figure sweeps: 10 %..100 % of the
/// uniform-traffic capacity (6 points in quick mode).
inline std::vector<double> figure_load_grid() {
  const unsigned points = quick_mode() ? 6 : 10;
  std::vector<double> grid;
  for (unsigned i = 1; i <= points; ++i) {
    grid.push_back(static_cast<double>(i) / points);
  }
  return grid;
}

inline SimConfig figure_config(NetworkSpec net, PatternKind pattern) {
  SimConfig config;
  config.net = net;
  config.traffic.pattern = pattern;
  config.traffic.seed = 12345;
  return config;  // paper timing defaults: warm-up 2000, horizon 20000
}

inline std::string slug(const std::string& name) {
  std::string out;
  for (char c : name) out += (c == ' ') ? '_' : c;
  return out;
}

inline void write_csv(const Table& table, const std::string& name) {
  std::error_code ec;
  std::filesystem::create_directories(bench_out_dir(), ec);
  const std::string path = bench_out_dir() + "/" + name + ".csv";
  if (table.write_csv(path)) {
    std::printf("  [csv] %s\n", path.c_str());
  }
  JsonReport::instance().add(name, table);
}

inline void print_section(const std::string& title) {
  std::printf("\n=== %s ===\n\n", title.c_str());
}

}  // namespace smart::benchtool
