// Shared plumbing for the figure-reproduction benches: the paper's four
// traffic patterns, the offered-load grid, and CSV emission.
//
// Each bench prints the tables that correspond to one figure of the paper
// and writes the same data as CSV files under ./bench_out/ for plotting.
// Set SMARTSIM_QUICK=1 to run a coarser load grid.
#pragma once

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/network.hpp"

namespace smart::benchtool {

inline const std::vector<PatternKind>& paper_patterns() {
  static const std::vector<PatternKind> patterns{
      PatternKind::kUniform,
      PatternKind::kComplement,
      PatternKind::kTranspose,
      PatternKind::kBitReversal,
  };
  return patterns;
}

/// The offered-load grid used by the figure sweeps: 10 %..100 % of the
/// uniform-traffic capacity (6 points in quick mode).
inline std::vector<double> figure_load_grid() {
  const unsigned points = quick_mode() ? 6 : 10;
  std::vector<double> grid;
  for (unsigned i = 1; i <= points; ++i) {
    grid.push_back(static_cast<double>(i) / points);
  }
  return grid;
}

inline SimConfig figure_config(NetworkSpec net, PatternKind pattern) {
  SimConfig config;
  config.net = net;
  config.traffic.pattern = pattern;
  config.traffic.seed = 12345;
  return config;  // paper timing defaults: warm-up 2000, horizon 20000
}

inline std::string slug(const std::string& name) {
  std::string out;
  for (char c : name) out += (c == ' ') ? '_' : c;
  return out;
}

inline void write_csv(const Table& table, const std::string& name) {
  std::error_code ec;
  std::filesystem::create_directories("bench_out", ec);
  const std::string path = "bench_out/" + name + ".csv";
  if (table.write_csv(path)) {
    std::printf("  [csv] %s\n", path.c_str());
  }
}

inline void print_section(const std::string& title) {
  std::printf("\n=== %s ===\n\n", title.c_str());
}

}  // namespace smart::benchtool
