// Extension experiment: oblivious Valiant routing as a third cube baseline.
//
// Valiant's two-phase randomized routing makes every traffic pattern look
// like uniform traffic at twice the distance. Against the paper's
// algorithms on the 16-ary 2-cube it therefore loses roughly half the
// throughput on benign patterns but is immune to adversarial structure:
// its curve is (nearly) the same for uniform, tornado, transpose and bit
// reversal, crossing above the deterministic algorithm exactly on the
// patterns where minimal routing concentrates load.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  smart::benchtool::init_cli(argc, argv);
  using namespace smart;
  using namespace smart::benchtool;

  const auto loads = figure_load_grid();
  std::printf("Extension — Valiant randomized routing vs the paper's cube "
              "algorithms (16-ary 2-cube)\n");

  const PatternKind patterns[] = {PatternKind::kUniform, PatternKind::kTornado,
                                  PatternKind::kTranspose,
                                  PatternKind::kBitReversal};
  std::vector<Curve> summary;
  for (PatternKind pattern : patterns) {
    std::vector<Curve> curves;
    for (RoutingKind routing :
         {RoutingKind::kCubeDeterministic, RoutingKind::kCubeDuato,
          RoutingKind::kCubeValiant}) {
      NetworkSpec spec = paper_cube_spec(routing == RoutingKind::kCubeValiant
                                             ? RoutingKind::kCubeDuato
                                             : routing);
      spec.routing = routing;
      curves.push_back(run_curve(to_string(routing),
                                 figure_config(spec, pattern), loads));
      summary.push_back(curves.back());
      summary.back().label = to_string(pattern) + ", " + to_string(routing);
    }
    print_section("Accepted vs. offered bandwidth (" + to_string(pattern) +
                  " traffic)");
    const Table accepted = cnf_accepted_table(curves);
    std::printf("%s", accepted.to_text().c_str());
    write_csv(accepted, "ext_valiant_" + slug(to_string(pattern)));
  }

  print_section("Saturation summary");
  const Table table = saturation_summary_table(summary);
  std::printf("%s", table.to_text().c_str());
  write_csv(table, "ext_valiant_saturation");
  std::printf("\nValiant's throughput is pattern-independent; minimal\n"
              "routing beats it on uniform traffic but deterministic\n"
              "routing falls below it on adversarial permutations.\n");
  return 0;
}
