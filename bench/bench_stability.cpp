// Extension experiment: post-saturation stability and latency tails.
//
// The paper (§6, §3) argues that accepted bandwidth should stay stable
// above saturation — both for bursty applications needing short peaks and
// for applications operating past saturation — and credits source
// throttling for that stability. This bench makes the claim measurable:
// for both networks at and above the saturation load, it reports the
// throughput time series (per 1000-cycle window), the throughput swing,
// and the latency distribution tails (p50/p95/p99), under smooth Bernoulli
// and bursty on/off arrivals of the same average rate.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  smart::benchtool::init_cli(argc, argv);
  using namespace smart;
  using namespace smart::benchtool;

  std::printf("Stability — throughput over time and latency tails at and "
              "above saturation\n");

  Table table({"network", "arrivals", "offered (frac)", "accepted (frac)",
               "swing (frac)", "p50 (cycles)", "p95 (cycles)",
               "p99 (cycles)"});
  Table series({"network", "arrivals", "offered (frac)", "window",
                "accepted (frac)"});

  const struct {
    const char* label;
    NetworkSpec spec;
  } networks[] = {
      {"16-ary 2-cube, Duato", paper_cube_spec(RoutingKind::kCubeDuato)},
      {"4-ary 4-tree, 4 vc", paper_tree_spec(4)},
  };
  const std::vector<double> loads =
      quick_mode() ? std::vector<double>{1.0} : std::vector<double>{0.8, 1.0};

  for (const auto& net : networks) {
    for (InjectionKind arrivals :
         {InjectionKind::kBernoulli, InjectionKind::kBursty}) {
      for (double load : loads) {
        SimConfig config = figure_config(net.spec, PatternKind::kUniform);
        config.traffic.offered_fraction = load;
        config.traffic.injection = arrivals;
        Network network(config);
        const SimulationResult& result = network.run();

        table.begin_row()
            .add_cell(std::string{net.label})
            .add_cell(to_string(arrivals))
            .add_cell(load, 2)
            .add_cell(result.accepted_fraction, 3)
            .add_cell(result.throughput_swing(), 3)
            .add_cell(result.latency_percentile(0.50), 1)
            .add_cell(result.latency_percentile(0.95), 1)
            .add_cell(result.latency_percentile(0.99), 1);

        for (std::size_t w = 0; w < result.window_accepted.size(); ++w) {
          series.begin_row()
              .add_cell(std::string{net.label})
              .add_cell(to_string(arrivals))
              .add_cell(load, 2)
              .add_cell(static_cast<std::uint64_t>(w))
              .add_cell(result.window_accepted[w], 3);
        }
      }
    }
  }

  std::printf("\n%s", table.to_text().c_str());
  write_csv(table, "stability_summary");
  write_csv(series, "stability_series");
  std::printf("\nSource throttling keeps the accepted bandwidth flat above\n"
              "saturation (small swing); bursty arrivals at the same average\n"
              "rate mainly stretch the latency tail, not the throughput.\n");
  return 0;
}
