// Extension experiment: graceful degradation under link faults.
//
// The paper compares the 4-ary 4-tree and the 16-ary 2-cube on fault-free
// fabrics. Here we break links on both 256-node networks and measure what
// each keeps delivering. The fat-tree's up*/down* path diversity lets the
// adaptive ascent steer around dead channels, while the cube's minimal
// routing loses capacity (and drops the packets whose only minimal path
// crosses a dead link). Fault sets are drawn from one seeded shuffle, so
// the set for N faults contains the set for N-1: each curve is a genuine
// progression, not independent samples.
//
// Two tables:
//   1. degradation — accepted bandwidth and latency (cycles and absolute
//      units via the Chien cost model) against the number of faulted
//      links, both networks at a moderate 60 % offered load;
//   2. epochs — a burst of faults landing mid-run (cycle 8000): per-epoch
//      accepted bandwidth before/after the event and the post-horizon
//      time-to-drain.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  smart::benchtool::init_cli(argc, argv);
  using namespace smart;
  using namespace smart::benchtool;

  std::printf("Extension — degradation under faulted links "
              "(uniform traffic, load 0.60)\n");

  constexpr double kLoad = 0.6;
  constexpr std::uint64_t kFaultSeed = 99;

  struct NetworkUnderTest {
    const char* label;
    NetworkSpec spec;
  };
  const NetworkUnderTest nets[] = {
      {"fat tree, 4 vc", paper_tree_spec(4)},
      {"cube, Duato", paper_cube_spec(RoutingKind::kCubeDuato)},
  };

  const std::vector<unsigned> fault_counts =
      quick_mode() ? std::vector<unsigned>{0, 1, 4, 16}
                   : std::vector<unsigned>{0, 1, 2, 4, 8, 16, 32};

  print_section("accepted bandwidth vs faulted links");
  Table table({"configuration", "faulted links", "accepted (frac)",
               "retained", "accepted (bits/ns)", "latency (cycles)",
               "latency (ns)", "unroutable", "verdict"});
  for (const NetworkUnderTest& net : nets) {
    const NormalizedScale scale = scale_for(net.spec);
    double baseline = 0.0;
    for (unsigned faults : fault_counts) {
      SimConfig config = figure_config(net.spec, PatternKind::kUniform);
      config.traffic.offered_fraction = kLoad;
      if (faults > 0) {
        config.faults.add_random_links(faults, kFaultSeed, /*start=*/0);
      }
      Network network(config);
      const SimulationResult& r = network.run();
      if (faults == 0) baseline = r.accepted_fraction;
      const double latency =
          r.latency_cycles.count() > 0 ? r.latency_cycles.mean() : 0.0;
      table.begin_row()
          .add_cell(std::string{net.label})
          .add_cell(static_cast<double>(faults), 0)
          .add_cell(r.accepted_fraction, 3)
          .add_cell(baseline > 0.0 ? r.accepted_fraction / baseline : 0.0, 3)
          .add_cell(to_bits_per_ns(r.accepted_flits_per_node_cycle,
                                   scale.nodes, scale.flit_bytes,
                                   scale.clock_ns),
                    1)
          .add_cell(latency, 1)
          .add_cell(to_ns(latency, scale.clock_ns), 1)
          .add_cell(static_cast<double>(r.unroutable_packets), 0)
          .add_cell(std::string{to_string(r.stall_verdict)});
    }
  }
  std::printf("%s", table.to_text().c_str());
  write_csv(table, "ext_fault_degradation");

  print_section("mid-run fault burst (8 links at cycle 8000) — epochs");
  Table epochs({"configuration", "epoch start", "epoch end", "faults",
                "accepted (frac)", "latency (cycles)", "dropped",
                "drain (cycles)"});
  for (const NetworkUnderTest& net : nets) {
    const NormalizedScale scale = scale_for(net.spec);
    SimConfig config = figure_config(net.spec, PatternKind::kUniform);
    config.traffic.offered_fraction = kLoad;
    config.faults.add_random_links(8, kFaultSeed, /*start=*/8000);
    config.timing.drain_after_horizon = true;
    Network network(config);
    const SimulationResult& r = network.run();
    for (const FaultEpoch& epoch : r.fault_epochs) {
      epochs.begin_row()
          .add_cell(std::string{net.label})
          .add_cell(static_cast<double>(epoch.start_cycle), 0)
          .add_cell(static_cast<double>(epoch.end_cycle), 0)
          .add_cell(static_cast<double>(epoch.active_faults), 0)
          .add_cell(epoch.accepted_flits_per_node_cycle /
                        scale.capacity_flits_per_node_cycle,
                    3)
          .add_cell(epoch.mean_latency_cycles, 1)
          .add_cell(static_cast<double>(epoch.dropped_packets), 0)
          .add_cell(&epoch == &r.fault_epochs.back()
                        ? format_double(static_cast<double>(r.drain_cycles), 0)
                        : std::string{""});
    }
  }
  std::printf("%s", epochs.to_text().c_str());
  write_csv(epochs, "ext_fault_epochs");

  std::printf(
      "\nThe tree sheds almost no bandwidth for small fault counts — the\n"
      "ascent simply avoids dead channels and every healthy root still\n"
      "reaches every leaf — while the cube pays immediately: packets whose\n"
      "minimal quadrant crosses a dead link either detour onto the escape\n"
      "lanes or, when no healthy minimal hop remains, are dropped.\n");
  return 0;
}
