// Regenerates Figure 6 of the paper: communication performance of a 16-ary
// 2-cube (256 nodes) with deterministic and Duato minimal-adaptive routing,
// in Chaos Normal Form, for the uniform, complement, transpose and
// bit-reversal patterns (panels a-h).
//
// Paper reference points (§9):
//   uniform    adaptive saturates at 80 %, deterministic at 60 %;
//              latency ~70 cycles before saturation
//   complement deterministic near-optimal at 47 %, adaptive saturates
//              early at 35 % (dimension order prevents conflicts here)
//   transpose  adaptive 50 %, more than twice the deterministic
//   bit rev.   adaptive 60 %, deterministic 20 %
#include "bench_common.hpp"

int main(int argc, char** argv) {
  smart::benchtool::init_cli(argc, argv);
  using namespace smart;
  using namespace smart::benchtool;

  const auto loads = figure_load_grid();
  std::printf("Figure 6 — 16-ary 2-cube, deterministic vs. Duato minimal "
              "adaptive (CNF)\n");

  std::vector<Curve> all_summary;
  for (PatternKind pattern : paper_patterns()) {
    const std::string pattern_name = to_string(pattern);
    std::vector<Curve> curves;
    curves.push_back(run_curve(
        "deterministic",
        figure_config(paper_cube_spec(RoutingKind::kCubeDeterministic),
                      pattern),
        loads));
    curves.push_back(run_curve(
        "Duato",
        figure_config(paper_cube_spec(RoutingKind::kCubeDuato), pattern),
        loads));
    for (const Curve& curve : curves) {
      all_summary.push_back(curve);
      all_summary.back().label = pattern_name + ", " + curve.label;
    }

    print_section("Accepted vs. offered bandwidth (" + pattern_name +
                  " traffic)");
    const Table accepted = cnf_accepted_table(curves);
    std::printf("%s", accepted.to_text().c_str());
    write_csv(accepted, "fig6_" + slug(pattern_name) + "_accepted");

    print_section("Network latency vs. offered bandwidth (" + pattern_name +
                  " traffic), cycles");
    const Table latency = cnf_latency_table(curves);
    std::printf("%s", latency.to_text().c_str());
    write_csv(latency, "fig6_" + slug(pattern_name) + "_latency");
  }

  print_section("Saturation summary (paper §9: uniform 60/80 %, complement "
                "47/35 %, transpose ~22/50 %, bit reversal 20/60 %)");
  const Table summary = saturation_summary_table(all_summary);
  std::printf("%s", summary.to_text().c_str());
  write_csv(summary, "fig6_saturation_summary");
  return 0;
}
