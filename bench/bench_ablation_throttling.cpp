// Ablation A3 (ours): source throttling. The paper's nodes inject through a
// single injection channel (§3), which keeps throughput stable above
// saturation. Opening one injection channel per virtual channel lets more
// packets enter a congested network; this bench compares accepted bandwidth
// and end-of-run backlog above saturation for both interfaces.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  smart::benchtool::init_cli(argc, argv);
  using namespace smart;
  using namespace smart::benchtool;

  const std::vector<double> loads =
      quick_mode() ? std::vector<double>{0.6, 1.0}
                   : std::vector<double>{0.4, 0.6, 0.8, 0.9, 1.0};

  std::printf("Ablation — source throttling (single injection channel vs one "
              "per virtual channel)\n");

  Table table({"network", "inj. channels", "offered (frac)",
               "accepted (frac)", "latency (cycles)", "in flight (end)"});
  const struct {
    const char* label;
    NetworkSpec spec;
  } networks[] = {
      {"16-ary 2-cube, Duato", paper_cube_spec(RoutingKind::kCubeDuato)},
      {"4-ary 4-tree, 4 vc", paper_tree_spec(4)},
  };
  for (const auto& net : networks) {
    for (unsigned channels : {1U, 4U}) {
      NetworkSpec spec = net.spec;
      spec.injection_channels = channels;
      const auto sweep =
          run_sweep(figure_config(spec, PatternKind::kUniform), loads);
      for (const SimulationResult& point : sweep) {
        table.begin_row()
            .add_cell(std::string{net.label})
            .add_cell(channels)
            .add_cell(point.offered_fraction, 2)
            .add_cell(point.accepted_fraction, 3)
            .add_cell(point.latency_cycles.count() > 0
                          ? format_double(point.latency_cycles.mean(), 1)
                          : std::string{"-"})
            .add_cell(point.packets_in_flight_end);
      }
    }
  }
  std::printf("\n%s", table.to_text().c_str());
  write_csv(table, "ablation_throttling");
  return 0;
}
