// Closed-loop workload bench: user-visible service metrics on 256-node
// fabrics.
//
// Two ladders on the paper cube (16-ary 2-cube, Duato) and the generated
// fattree2 at equal terminal count:
//
//   * incast window ladder — 240 clients aimed at 16 storage nodes, the
//     closed-loop window stepped up until the servers saturate. The flit
//     counters barely move past the knee; the completion-latency tail and
//     the goodput-per-window curve show where adding concurrency stops
//     buying service (the open-loop sweeps cannot express this at all).
//   * RPC fan-out ladder — frontends spray over leaf sets of growing
//     width; a request completes only when the slowest leaf answered, so
//     p99 tracks the max of fanout service draws, not the mean.
//
// All workload metrics are deterministic (the layer runs at the engine's
// serial call sites), so every table cell lands in the manifest as a
// strict bench/ gauge for `smartsim_report --check`.
#include "bench_common.hpp"

#include "workload/workload.hpp"

namespace {

smart::SimConfig workload_config(const smart::NetworkSpec& net,
                                 const std::string& spec_text,
                                 std::uint64_t horizon) {
  using namespace smart;
  SimConfig config;
  config.net = net;
  config.traffic.seed = 12345;
  config.timing.warmup_cycles = 400;
  config.timing.horizon_cycles = horizon;
  config.engine_threads = 4;
  std::string error;
  if (!parse_workload_spec(spec_text, &config.workload, &error)) {
    std::fprintf(stderr, "bad workload spec %s: %s\n", spec_text.c_str(),
                 error.c_str());
    std::exit(1);
  }
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  smart::benchtool::init_cli(argc, argv);
  using namespace smart;
  using namespace smart::benchtool;

  ensure_builtin_workloads();
  const std::uint64_t horizon = quick_mode() ? 4000 : 12000;

  NetworkSpec cube;
  cube.topology = "cube";
  cube.k = 16;
  cube.n = 2;
  cube.routing = RoutingKind::kCubeDuato;

  NetworkSpec fattree;
  fattree.topology = "fattree2";
  fattree.topo_params = {{"nodes", "256"}, {"radix", "36"}};
  fattree.routing = RoutingKind::kUpDown;

  const struct {
    const char* label;
    const NetworkSpec* net;
  } fabrics[] = {{"16-ary 2-cube, Duato", &cube},
                 {"fattree2 256/36, up-down", &fattree}};

  print_section("Incast window ladder — 240 clients, 16 storage nodes");
  std::printf("Closed loop: each client keeps `window` requests in flight;\n"
              "goodput saturates at the servers' service capacity and the\n"
              "completion tail absorbs every extra outstanding request.\n");
  {
    const std::vector<unsigned> windows =
        quick_mode() ? std::vector<unsigned>{1, 4}
                     : std::vector<unsigned>{1, 2, 4, 8};
    Table table({"network", "window", "completed", "goodput (req/kcyc/cli)",
                 "p50 (cyc)", "p95 (cyc)", "p99 (cyc)", "fairness",
                 "outstanding mean"});
    for (const auto& fabric : fabrics) {
      for (unsigned window : windows) {
        const std::string spec = "incast:servers=16,service=8,dist=exp,"
                                 "window=" + std::to_string(window);
        Network network(workload_config(*fabric.net, spec, horizon));
        const SimulationResult& r = network.run();
        const WorkloadReport& w = r.workload;
        table.begin_row()
            .add_cell(std::string{fabric.label})
            .add_cell(window)
            .add_cell(static_cast<double>(w.requests_completed), 0)
            .add_cell(w.goodput, 3)
            .add_cell(w.completion_percentile(0.50), 1)
            .add_cell(w.completion_percentile(0.95), 1)
            .add_cell(w.completion_percentile(0.99), 1)
            .add_cell(w.fairness_jain, 3)
            .add_cell(w.outstanding_mean, 2);
      }
    }
    std::printf("\n%s", table.to_text().c_str());
    write_csv(table, "workload_incast_window");
  }

  print_section("RPC fan-out ladder — 64 servers, window 1");
  std::printf("A request completes when the slowest of `fanout` leaves\n"
              "replied: the p99/p50 ratio widens with the fan-out while\n"
              "per-leaf load barely changes. Window 1 lets the closed loop\n"
              "self-throttle to the frontends' reply bandwidth.\n");
  {
    const std::vector<unsigned> fanouts =
        quick_mode() ? std::vector<unsigned>{2, 8}
                     : std::vector<unsigned>{2, 4, 8};
    Table table({"network", "fanout", "completed", "goodput (req/kcyc/cli)",
                 "p50 (cyc)", "p95 (cyc)", "p99 (cyc)", "fairness"});
    for (const auto& fabric : fabrics) {
      for (unsigned fanout : fanouts) {
        const std::string spec = "rpc:servers=64,window=1,service=8,dist=exp,"
                                 "fanout=" + std::to_string(fanout);
        Network network(workload_config(*fabric.net, spec, horizon));
        const SimulationResult& r = network.run();
        const WorkloadReport& w = r.workload;
        table.begin_row()
            .add_cell(std::string{fabric.label})
            .add_cell(fanout)
            .add_cell(static_cast<double>(w.requests_completed), 0)
            .add_cell(w.goodput, 3)
            .add_cell(w.completion_percentile(0.50), 1)
            .add_cell(w.completion_percentile(0.95), 1)
            .add_cell(w.completion_percentile(0.99), 1)
            .add_cell(w.fairness_jain, 3);
      }
    }
    std::printf("\n%s", table.to_text().c_str());
    write_csv(table, "workload_rpc_fanout");
  }

  std::printf("\nAll cells are deterministic workload metrics (strict in\n"
              "the manifest); both fabrics run the sharded engine.\n");
  return 0;
}
