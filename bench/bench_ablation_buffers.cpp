// Ablation A1 (ours): lane buffer depth. The paper fixes input and output
// lanes at 4 flits (§4); this bench varies the depth to show how much of
// the two networks' throughput comes from buffering rather than from the
// topology or the routing freedom.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  smart::benchtool::init_cli(argc, argv);
  using namespace smart;
  using namespace smart::benchtool;

  const std::vector<double> loads =
      quick_mode() ? std::vector<double>{0.4, 0.8}
                   : std::vector<double>{0.2, 0.4, 0.6, 0.8, 1.0};

  std::printf("Ablation — lane buffer depth (paper value: 4 flits)\n");

  Table table({"network", "buffer depth", "offered (frac)",
               "accepted (frac)", "latency (cycles)"});
  const struct {
    const char* label;
    NetworkSpec spec;
  } networks[] = {
      {"16-ary 2-cube, Duato", paper_cube_spec(RoutingKind::kCubeDuato)},
      {"4-ary 4-tree, 4 vc", paper_tree_spec(4)},
  };
  for (const auto& net : networks) {
    for (unsigned depth : {2U, 4U, 8U}) {
      NetworkSpec spec = net.spec;
      spec.buffer_depth = depth;
      const auto sweep =
          run_sweep(figure_config(spec, PatternKind::kUniform), loads);
      for (const SimulationResult& point : sweep) {
        table.begin_row()
            .add_cell(std::string{net.label})
            .add_cell(depth)
            .add_cell(point.offered_fraction, 2)
            .add_cell(point.accepted_fraction, 3)
            .add_cell(point.latency_cycles.count() > 0
                          ? format_double(point.latency_cycles.mean(), 1)
                          : std::string{"-"});
      }
    }
  }
  std::printf("\n%s", table.to_text().c_str());
  write_csv(table, "ablation_buffers");
  return 0;
}
