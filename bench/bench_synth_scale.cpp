// Large-fabric scaling bench for the topology-synthesis subsystem.
//
// One quick load point per generated family at >= 4096 nodes, run on the
// sharded engine with four worker threads. The tables capture the
// deterministic scale facts (fabric size, shard count, derived clock,
// accepted traffic, mean hops) per family — one single-row table each, so
// every value lands in the manifest as a strict bench/ gauge. The
// simulation rate (cycles/s, Mflits/s) is machine-dependent and goes into
// the advisory time/ namespace instead: `smartsim_report --check` between
// two bench runs then gates the deterministic outputs hard and warns when
// throughput at scale drifts beyond the time threshold.
#include "bench_common.hpp"

#include "obs/registry.hpp"
#include "synth/families.hpp"
#include "topology/registry.hpp"

int main(int argc, char** argv) {
  smart::benchtool::init_cli(argc, argv);
  using namespace smart;
  using namespace smart::benchtool;

  ensure_builtin_families();
  std::printf("Topology synthesis — generated fabrics at 4K nodes, "
              "sharded engine, 4 threads\n");

  struct Case {
    const char* spec;
    RoutingKind routing;
  };
  const Case cases[] = {
      {"fattree2:nodes=4096,radix=36", RoutingKind::kUpDown},
      {"clos:m=16,n=16,r=256", RoutingKind::kUpDown},
      {"torus:nodes=4096,dims=3", RoutingKind::kTorusDor},
      {"tehcube:k=4,dims=8", RoutingKind::kTorusDor},
  };
  const std::uint64_t horizon = quick_mode() ? 600 : 1500;

  for (const Case& c : cases) {
    TopoSpec spec;
    std::string error;
    if (!parse_topology_spec(c.spec, &spec, &error)) {
      std::fprintf(stderr, "bad spec %s: %s\n", c.spec, error.c_str());
      return 1;
    }
    SimConfig config;
    config.net.topology = spec.family;
    config.net.topo_params = spec.params;
    config.net.routing = c.routing;
    config.traffic.pattern = PatternKind::kUniform;
    config.traffic.offered_fraction = 0.25;
    config.traffic.seed = 12345;
    config.timing.warmup_cycles = 200;
    config.timing.horizon_cycles = horizon;
    config.engine_threads = 4;

    const NormalizedScale scale = scale_for(config.net);
    Network network(config);
    const SimulationResult& r = network.run();
    if (r.deadlocked) {
      std::fprintf(stderr, "%s deadlocked\n", c.spec);
      return 1;
    }

    Table table({"spec", "nodes", "switches", "shards", "clock (ns)",
                 "accepted fraction", "delivered flits", "hops mean"});
    table.begin_row()
        .add_cell(std::string{c.spec})
        .add_cell(static_cast<double>(scale.nodes), 0)
        .add_cell(static_cast<double>(network.topology().switch_count()), 0)
        .add_cell(static_cast<double>(r.engine_shards), 0)
        .add_cell(scale.clock_ns, 2)
        .add_cell(r.accepted_fraction, 4)
        .add_cell(static_cast<double>(r.delivered_flits), 0)
        .add_cell(r.hops.mean(), 2);
    std::printf("\n%s", table.to_text().c_str());
    const std::string name = std::string("synth_scale_") + spec.family;
    write_csv(table, name);
    JsonReport::instance().advisory_gauge(name + "/cycles_per_second",
                                          r.sim_cycles_per_second, "1/s");
    JsonReport::instance().advisory_gauge(name + "/mflits_per_second",
                                          r.sim_mflits_per_second, "M/s");
  }
  std::printf("\nEvery family above runs the parallel word-aligned shard\n"
              "pipeline; rates are advisory (time/), scale facts strict.\n");
  return 0;
}
