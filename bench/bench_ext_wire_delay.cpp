// Extension experiment: wire-delay sensitivity (the paper's closing claim).
//
// §11: "As the performance of interconnection networks becomes increasingly
// limited by physical constraints as the wire delay, we expect that
// low-dimensional cubes will increase the gap with the fat-trees, because
// they can be easily mapped on the three-dimensional space."
//
// We test that projection by scaling the link-delay term of the Chien model
// by a technology factor (the cube keeps short wires, the tree medium
// wires — both scale), recomputing each configuration's clock, and
// re-expressing the measured cycle-level saturation throughput in absolute
// bits/nsec. The cycle-level behavior is clock-independent, so one sweep
// per configuration suffices for every wire factor.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  smart::benchtool::init_cli(argc, argv);
  using namespace smart;
  using namespace smart::benchtool;

  std::printf("Extension — wire-delay sensitivity of the normalized "
              "comparison (uniform traffic)\n");

  const auto loads = figure_load_grid();
  struct Config {
    const char* label;
    NetworkSpec spec;
  };
  const Config configs[] = {
      {"cube, deterministic", paper_cube_spec(RoutingKind::kCubeDeterministic)},
      {"cube, Duato", paper_cube_spec(RoutingKind::kCubeDuato)},
      {"fat tree, 4 vc", paper_tree_spec(4)},
  };

  // One cycle-level sweep per configuration; clocks scale afterwards.
  std::vector<SaturationEstimate> saturation;
  std::vector<NormalizedScale> scales;
  for (const Config& config : configs) {
    const auto sweep =
        run_sweep(figure_config(config.spec, PatternKind::kUniform), loads);
    saturation.push_back(estimate_saturation(sweep));
    scales.push_back(scale_for(config.spec));
  }

  Table table({"wire factor", "configuration", "clock (ns)",
               "throughput (bits/ns)", "cube/tree ratio"});
  for (double factor : {1.0, 1.5, 2.0, 3.0, 4.0}) {
    double best_cube = 0.0;
    double best_tree = 0.0;
    std::vector<double> throughput(std::size(configs));
    std::vector<double> clocks(std::size(configs));
    for (std::size_t i = 0; i < std::size(configs); ++i) {
      RouterDelays delays = delays_for(configs[i].spec);
      delays.link_ns *= factor;
      clocks[i] = delays.clock_ns();
      throughput[i] = to_bits_per_ns(
          saturation[i].accepted_fraction *
              scales[i].capacity_flits_per_node_cycle,
          scales[i].nodes, scales[i].flit_bytes, clocks[i]);
      if (configs[i].spec.topology == std::string("cube")) {
        best_cube = std::max(best_cube, throughput[i]);
      } else {
        best_tree = std::max(best_tree, throughput[i]);
      }
    }
    for (std::size_t i = 0; i < std::size(configs); ++i) {
      table.begin_row()
          .add_cell(factor, 1)
          .add_cell(std::string{configs[i].label})
          .add_cell(clocks[i], 2)
          .add_cell(throughput[i], 1)
          .add_cell(i + 1 == std::size(configs)
                        ? format_double(best_cube / best_tree, 2)
                        : std::string{""});
    }
  }
  std::printf("\n%s", table.to_text().c_str());
  write_csv(table, "ext_wire_delay");
  std::printf("\nThe tree is wire-limited from the start, the cube becomes\n"
              "wire-limited only once the factor exceeds its routing delay;\n"
              "past that point both clocks scale with the factor but the\n"
              "tree's longer wires keep it behind — the cube/tree best-\n"
              "throughput ratio grows, as the paper projects (§11).\n");
  return 0;
}
