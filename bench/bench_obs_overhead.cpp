// Overhead of the observability layer (src/obs/).
//
// Runs the same 256-node configuration along the observability ladder —
// everything off, the always-on flight recorder + anomaly watchdogs
// (the shipping default), stall counters + series, full packet trace —
// checks the simulation results are bit-identical at every rung
// (instrumentation must never perturb the model), and reports each
// rung's wall-clock overhead against the everything-off baseline.
//
// The acceptance bar for the default rung (flight + anomaly) is <= 5 %
// cycles/s overhead at this scale; the bar is printed rather than
// hard-failed because CI wall clocks are noisy, but the bit-identity
// check is a hard failure.
//
// Set SMARTSIM_QUICK=1 for a shorter horizon.
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "bench_common.hpp"
#include "core/network.hpp"

namespace smart {
namespace {

struct TimedRun {
  SimulationResult result;
  double seconds = 0.0;
};

TimedRun timed_run(const SimConfig& config) {
  const auto start = std::chrono::steady_clock::now();
  Network network(config);
  TimedRun out;
  out.result = network.run();
  out.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  return out;
}

bool identical(const SimulationResult& a, const SimulationResult& b) {
  return a.generated_packets == b.generated_packets &&
         a.delivered_packets == b.delivered_packets &&
         a.delivered_flits == b.delivered_flits &&
         a.accepted_fraction == b.accepted_fraction &&
         a.latency_cycles.mean() == b.latency_cycles.mean() &&
         a.latency_cycles.count() == b.latency_cycles.count() &&
         a.hops.mean() == b.hops.mean() &&
         a.link_utilization.mean() == b.link_utilization.mean();
}

int run_bench() {
  SimConfig config;
  config.net.topology = std::string("cube");
  config.net.k = 16;
  config.net.n = 2;
  config.net.routing = RoutingKind::kCubeDuato;
  config.traffic.pattern = PatternKind::kUniform;
  config.traffic.offered_fraction = 0.5;
  config.traffic.seed = 99;
  config.timing.warmup_cycles = 1000;
  config.timing.horizon_cycles = quick_mode() ? 3000 : 10000;
  // The baseline really is everything off: flight + anomaly default on.
  config.flight.enabled = false;
  config.anomaly.enabled = false;

  benchtool::print_section(
      "observability overhead (16-ary 2-cube, 256 nodes, load 0.50)");

  // Warm the caches once so the first timed run is not penalized.
  (void)timed_run(config);

  const TimedRun off = timed_run(config);

  SimConfig flight = config;
  flight.flight.enabled = true;
  flight.anomaly.enabled = true;
  const TimedRun with_flight = timed_run(flight);

  SimConfig counters = flight;
  counters.obs.enabled = true;
  counters.obs.sample_interval_cycles = 1000;
  const TimedRun with_counters = timed_run(counters);

  SimConfig tracing = counters;
  tracing.obs.trace_out =
      benchtool::bench_out_dir() + "/obs_overhead_trace.json";
  tracing.obs.trace_hops = true;
  const TimedRun with_trace = timed_run(tracing);

  const double flits = static_cast<double>(off.result.delivered_flits);
  const auto report = [&](const char* label, const TimedRun& run) {
    std::printf("  %-22s %7.3f s  %8.2f Mflits/s  %+6.1f %% vs off\n", label,
                run.seconds, flits / run.seconds / 1e6,
                (run.seconds / off.seconds - 1.0) * 100.0);
  };
  report("all obs off", off);
  report("flight+anomaly (dflt)", with_flight);
  report("obs counters+series", with_counters);
  report("obs + full trace", with_trace);
  std::printf("  trace events written: %llu\n",
              static_cast<unsigned long long>(with_trace.result.obs.trace_events));

  if (!identical(off.result, with_flight.result) ||
      !identical(off.result, with_counters.result) ||
      !identical(off.result, with_trace.result)) {
    std::printf("FAIL: observability perturbed the simulation results\n");
    return 1;
  }
  std::printf("  results bit-identical across all four runs\n");

  const double flight_overhead =
      (with_flight.seconds / off.seconds - 1.0) * 100.0;
  std::printf("  flight+anomaly overhead: %+.1f %% (target <= 5 %%)%s\n",
              flight_overhead, flight_overhead > 5.0 ? "  [over target]" : "");
  std::printf("  flight snapshots recorded: %llu\n",
              static_cast<unsigned long long>(
                  with_flight.result.flight.total_recorded));

  const std::uint64_t stall_total = with_counters.result.obs.stalls.total();
  std::printf("  stall events attributed: %llu\n",
              static_cast<unsigned long long>(stall_total));

  // Machine-readable rows for the CI bench A/B diff: the identity flags
  // are deterministic (strict), the wall-clock rates advisory.
  benchtool::JsonReport::instance().advisory_gauge(
      "obs_overhead/flight_pct", flight_overhead, "%");
  benchtool::JsonReport::instance().advisory_gauge(
      "obs_overhead/off_mflits_per_s", flits / off.seconds / 1e6, "M/s");
  benchtool::JsonReport::instance().advisory_gauge(
      "obs_overhead/flight_mflits_per_s",
      flits / with_flight.seconds / 1e6, "M/s");
  return 0;
}

}  // namespace
}  // namespace smart

int main(int argc, char** argv) {
  smart::benchtool::init_cli(argc, argv);
  return smart::run_bench();
}
