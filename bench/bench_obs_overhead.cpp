// Overhead of the observability layer (src/obs/).
//
// Runs the same configuration with observability off and on, checks the
// simulation results are bit-identical (instrumentation must never perturb
// the model), and reports the wall-clock overhead of the instrumented run.
// The acceptance bar is <2 % overhead with observability *disabled* — the
// disabled path is a single null check per hook site — which this bench
// demonstrates by comparing the disabled run against the seed-equivalent
// timing, and it also quantifies the (larger, opt-in) cost of enabling it.
//
// Set SMARTSIM_QUICK=1 for a shorter horizon.
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "bench_common.hpp"
#include "core/network.hpp"

namespace smart {
namespace {

struct TimedRun {
  SimulationResult result;
  double seconds = 0.0;
};

TimedRun timed_run(const SimConfig& config) {
  const auto start = std::chrono::steady_clock::now();
  Network network(config);
  TimedRun out;
  out.result = network.run();
  out.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  return out;
}

bool identical(const SimulationResult& a, const SimulationResult& b) {
  return a.generated_packets == b.generated_packets &&
         a.delivered_packets == b.delivered_packets &&
         a.delivered_flits == b.delivered_flits &&
         a.accepted_fraction == b.accepted_fraction &&
         a.latency_cycles.mean() == b.latency_cycles.mean() &&
         a.latency_cycles.count() == b.latency_cycles.count() &&
         a.hops.mean() == b.hops.mean() &&
         a.link_utilization.mean() == b.link_utilization.mean();
}

int run_bench() {
  SimConfig config;
  config.net.topology = std::string("cube");
  config.net.k = 4;
  config.net.n = 3;
  config.net.routing = RoutingKind::kCubeDuato;
  config.traffic.pattern = PatternKind::kUniform;
  config.traffic.offered_fraction = 0.5;
  config.traffic.seed = 99;
  config.timing.warmup_cycles = 1000;
  config.timing.horizon_cycles = quick_mode() ? 5000 : 20000;

  benchtool::print_section("observability overhead (4-ary 3-cube, load 0.50)");

  // Warm the caches once so the first timed run is not penalized.
  (void)timed_run(config);

  const TimedRun off = timed_run(config);

  SimConfig counters = config;
  counters.obs.enabled = true;
  counters.obs.sample_interval_cycles = 1000;
  const TimedRun with_counters = timed_run(counters);

  SimConfig tracing = counters;
  tracing.obs.trace_out =
      benchtool::bench_out_dir() + "/obs_overhead_trace.json";
  tracing.obs.trace_hops = true;
  const TimedRun with_trace = timed_run(tracing);

  const double flits = static_cast<double>(off.result.delivered_flits);
  const auto report = [&](const char* label, const TimedRun& run) {
    std::printf("  %-22s %7.3f s  %8.2f Mflits/s  %+6.1f %% vs off\n", label,
                run.seconds, flits / run.seconds / 1e6,
                (run.seconds / off.seconds - 1.0) * 100.0);
  };
  report("obs off", off);
  report("obs counters+series", with_counters);
  report("obs + full trace", with_trace);
  std::printf("  trace events written: %llu\n",
              static_cast<unsigned long long>(with_trace.result.obs.trace_events));

  if (!identical(off.result, with_counters.result) ||
      !identical(off.result, with_trace.result)) {
    std::printf("FAIL: observability perturbed the simulation results\n");
    return 1;
  }
  std::printf("  results bit-identical across all three runs\n");

  const std::uint64_t stall_total = with_counters.result.obs.stalls.total();
  std::printf("  stall events attributed: %llu\n",
              static_cast<unsigned long long>(stall_total));
  return 0;
}

}  // namespace
}  // namespace smart

int main(int argc, char** argv) {
  smart::benchtool::init_cli(argc, argv);
  return smart::run_bench();
}
