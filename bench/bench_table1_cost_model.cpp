// Regenerates Table 1 of the paper: delays of the two routing algorithms
// for the 16-ary 2-cube under Chien's cost model, in nanoseconds.
//
//   paper:            T_routing  T_crossbar  T_link  T_clock
//     deterministic      5.9        5.85      6.34     6.34
//     Duato              7.8        5.85      6.34     7.8
#include <cstdio>

#include "bench_common.hpp"
#include "core/config.hpp"
#include "core/experiment.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace smart;
  benchtool::init_cli(argc, argv);

  Table table({"algorithm", "T_routing (ns)", "T_crossbar (ns)",
               "T_link (ns)", "T_clock (ns)", "limited by"});
  const struct {
    const char* label;
    RoutingKind routing;
  } rows[] = {
      {"deterministic", RoutingKind::kCubeDeterministic},
      {"Duato", RoutingKind::kCubeDuato},
  };
  for (const auto& row : rows) {
    const RouterDelays delays = delays_for(paper_cube_spec(row.routing));
    table.begin_row()
        .add_cell(std::string{row.label})
        .add_cell(delays.routing_ns, 2)
        .add_cell(delays.crossbar_ns, 2)
        .add_cell(delays.link_ns, 2)
        .add_cell(delays.clock_ns(), 2)
        .add_cell(to_string(delays.limiting_phase()));
  }

  std::printf("Table 1 — router delays of the 16-ary 2-cube algorithms\n");
  std::printf("(V = 4, P = 17, short wires; paper: 5.9/5.85/6.34/6.34 and "
              "7.8/5.85/6.34/7.8)\n\n%s\n", table.to_text().c_str());
  benchtool::JsonReport::instance().add("table1_router_delays", table);
  return 0;
}
