// Regenerates the analytic quantities the paper derives for the two
// networks: node/switch/link counts (§5 normalization: same processors,
// same routers), bisection and capacity, diameters, and eq. (5) — the
// average distance d_m = 7.125 of the 4-ary 4-tree under the transpose and
// bit-reversal permutations — plus the distance-class histogram of §8.
#include <cstdio>
#include <map>

#include "bench_common.hpp"
#include "topology/kary_ncube.hpp"
#include "topology/kary_ntree.hpp"

int main(int argc, char** argv) {
  smart::benchtool::init_cli(argc, argv);
  using namespace smart;
  using namespace smart::benchtool;

  const KaryNCube cube(16, 2);
  const KaryNTree tree(4, 4);

  Table table({"property", "16-ary 2-cube", "4-ary 4-tree"});
  table.begin_row()
      .add_cell(std::string{"processing nodes"})
      .add_cell(static_cast<std::uint64_t>(cube.node_count()))
      .add_cell(static_cast<std::uint64_t>(tree.node_count()));
  table.begin_row()
      .add_cell(std::string{"routing switches"})
      .add_cell(static_cast<std::uint64_t>(cube.switch_count()))
      .add_cell(static_cast<std::uint64_t>(tree.switch_count()));
  table.begin_row()
      .add_cell(std::string{"switch arity (network ports)"})
      .add_cell(std::uint64_t{4})
      .add_cell(std::uint64_t{8});
  table.begin_row()
      .add_cell(std::string{"flit width (bytes, normalized)"})
      .add_cell(static_cast<std::uint64_t>(
          paper_cube_spec(RoutingKind::kCubeDuato).resolved_flit_bytes()))
      .add_cell(static_cast<std::uint64_t>(paper_tree_spec(1).resolved_flit_bytes()));
  table.begin_row()
      .add_cell(std::string{"diameter (channels)"})
      .add_cell(static_cast<std::uint64_t>(cube.diameter()))
      .add_cell(static_cast<std::uint64_t>(tree.diameter()));
  table.begin_row()
      .add_cell(std::string{"average distance, uniform"})
      .add_cell(cube.average_distance(), 3)
      .add_cell(tree.average_distance(), 3);
  table.begin_row()
      .add_cell(std::string{"bisection channels (one way)"})
      .add_cell(static_cast<std::uint64_t>(cube.bisection_channels()))
      .add_cell(static_cast<std::uint64_t>(tree.bisection_channels()));
  table.begin_row()
      .add_cell(std::string{"capacity (flits/node/cycle)"})
      .add_cell(cube.uniform_capacity_flits_per_node_cycle(), 3)
      .add_cell(tree.uniform_capacity_flits_per_node_cycle(), 3);
  table.begin_row()
      .add_cell(std::string{"capacity (bytes/node/cycle)"})
      .add_cell(cube.uniform_capacity_flits_per_node_cycle() * 4, 3)
      .add_cell(tree.uniform_capacity_flits_per_node_cycle() * 2, 3);

  std::printf("Topology properties of the paper's two networks (§5)\n\n%s\n",
              table.to_text().c_str());
  write_csv(table, "topology_properties");

  // Equation (5): d_m for transpose / bit reversal on the 4-ary 4-tree.
  for (PatternKind kind : {PatternKind::kTranspose, PatternKind::kBitReversal}) {
    const auto pattern = make_pattern(kind, tree.node_count());
    const double dm =
        tree.average_distance_under_permutation(pattern->destination_table());
    std::printf("d_m under %s: %.3f (paper eq. 5: 7.125)\n",
                pattern->name().c_str(), dm);

    std::map<unsigned, unsigned> classes;
    const auto dest = pattern->destination_table();
    for (NodeId p = 0; p < tree.node_count(); ++p) {
      ++classes[tree.min_hops(p, dest[p])];
    }
    std::printf("  distance classes:");
    for (const auto& [distance, count] : classes) {
      std::printf("  d=%u x%u", distance, count);
    }
    std::printf("   (paper: k^(n/2)=16 at d=0, (k-1)k^(n/2+i-1) at n+2i)\n");
  }
  return 0;
}
