// Regenerates Figure 7 of the paper: the two networks compared in ABSOLUTE
// units. The raw CNF data of Figures 5 and 6 is re-expressed through the
// Chien cost model — traffic in bits/nsec, latency in nsec — using each
// configuration's own router clock (Tables 1 and 2), so the router
// complexity and the wire delay are priced in (panels a-h: five curves per
// pattern).
//
// Paper reference points (§10/§11):
//   uniform    cube wins: Duato ~440 bits/ns, deterministic ~350, best tree
//              (4 vc) ~280, tree 1 vc ~150; cube latency ~0.5 us vs ~1 us
//   complement tree wins: ~400 bits/ns all variants vs cube det ~280/250
//   transpose, bit reversal: duato + tree 2/4 vc cluster at 250-300;
//              deterministic and tree 1 vc at 100-150
#include "bench_common.hpp"

int main(int argc, char** argv) {
  smart::benchtool::init_cli(argc, argv);
  using namespace smart;
  using namespace smart::benchtool;

  const auto loads = figure_load_grid();
  std::printf("Figure 7 — normalized comparison of the 16-ary 2-cube and the "
              "4-ary 4-tree (absolute units)\n");

  std::vector<Curve> all_summary;
  for (PatternKind pattern : paper_patterns()) {
    const std::string pattern_name = to_string(pattern);
    std::vector<Curve> curves;
    curves.push_back(run_curve(
        "cube, deterministic",
        figure_config(paper_cube_spec(RoutingKind::kCubeDeterministic),
                      pattern),
        loads));
    curves.push_back(run_curve(
        "cube, Duato",
        figure_config(paper_cube_spec(RoutingKind::kCubeDuato), pattern),
        loads));
    for (unsigned vcs : {1U, 2U, 4U}) {
      curves.push_back(
          run_curve("fat tree, " + std::to_string(vcs) + " vc",
                    figure_config(paper_tree_spec(vcs), pattern), loads));
    }
    for (const Curve& curve : curves) {
      all_summary.push_back(curve);
      all_summary.back().label = pattern_name + ", " + curve.label;
    }

    print_section("Traffic and latency in absolute units (" + pattern_name +
                  " traffic)");
    const Table absolute = absolute_table(curves);
    std::printf("%s", absolute.to_text().c_str());
    write_csv(absolute, "fig7_" + slug(pattern_name) + "_absolute");
  }

  print_section("Saturation summary in absolute units (paper §10: uniform "
                "440/350/280/150 bits/ns; complement tree ~400 vs cube "
                "~250-280; cube latency ~0.5 us vs tree ~1 us below "
                "saturation)");
  const Table summary = saturation_summary_table(all_summary);
  std::printf("%s", summary.to_text().c_str());
  write_csv(summary, "fig7_saturation_summary");
  return 0;
}
