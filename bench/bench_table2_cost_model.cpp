// Regenerates Table 2 of the paper: delays of the three variants of the
// adaptive fat-tree algorithm (1, 2 and 4 virtual channels) under Chien's
// cost model, in nanoseconds.
//
//   paper:    T_routing  T_crossbar  T_link  T_clock
//     1 vc       8.06       5.2       9.64     9.64
//     2 vc       9.26       5.8      10.24    10.24
//     4 vc      10.46       6.4      10.84    10.84
#include <cstdio>

#include "bench_common.hpp"
#include "core/config.hpp"
#include "core/experiment.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace smart;
  benchtool::init_cli(argc, argv);

  Table table({"variant", "T_routing (ns)", "T_crossbar (ns)", "T_link (ns)",
               "T_clock (ns)", "limited by"});
  for (unsigned vcs : {1U, 2U, 4U}) {
    const RouterDelays delays = delays_for(paper_tree_spec(vcs));
    table.begin_row()
        .add_cell(std::to_string(vcs) + " vc")
        .add_cell(delays.routing_ns, 2)
        .add_cell(delays.crossbar_ns, 2)
        .add_cell(delays.link_ns, 2)
        .add_cell(delays.clock_ns(), 2)
        .add_cell(to_string(delays.limiting_phase()));
  }

  std::printf("Table 2 — router delays of the 4-ary 4-tree adaptive variants\n");
  std::printf("(F = (2k-1)V, P = 2kV, medium wires; paper: 8.06/5.2/9.64, "
              "9.26/5.8/10.24, 10.46/6.4/10.84)\n\n%s\n",
              table.to_text().c_str());
  benchtool::JsonReport::instance().add("table2_router_delays", table);
  return 0;
}
