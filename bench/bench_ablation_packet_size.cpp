// Ablation A2 (ours): packet size. The paper fixes packets at 64 bytes
// (§4); this bench varies the size. Longer worms hold their wormhole paths
// longer, so blocking costs grow with packet size — especially on the
// narrow-flit fat-tree, where the same bytes make twice the flits.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  smart::benchtool::init_cli(argc, argv);
  using namespace smart;
  using namespace smart::benchtool;

  const std::vector<double> loads =
      quick_mode() ? std::vector<double>{0.4, 0.8}
                   : std::vector<double>{0.3, 0.6, 0.9};

  std::printf("Ablation — packet size (paper value: 64 bytes)\n");

  Table table({"network", "packet (bytes)", "flits/packet", "offered (frac)",
               "accepted (frac)", "latency (cycles)"});
  const struct {
    const char* label;
    NetworkSpec spec;
  } networks[] = {
      {"16-ary 2-cube, Duato", paper_cube_spec(RoutingKind::kCubeDuato)},
      {"4-ary 4-tree, 4 vc", paper_tree_spec(4)},
  };
  for (const auto& net : networks) {
    for (unsigned bytes : {32U, 64U, 128U, 256U}) {
      NetworkSpec spec = net.spec;
      spec.packet_bytes = bytes;
      const auto sweep =
          run_sweep(figure_config(spec, PatternKind::kUniform), loads);
      for (const SimulationResult& point : sweep) {
        table.begin_row()
            .add_cell(std::string{net.label})
            .add_cell(bytes)
            .add_cell(spec.flits_per_packet())
            .add_cell(point.offered_fraction, 2)
            .add_cell(point.accepted_fraction, 3)
            .add_cell(point.latency_cycles.count() > 0
                          ? format_double(point.latency_cycles.mean(), 1)
                          : std::string{"-"});
      }
    }
  }
  std::printf("\n%s", table.to_text().c_str());
  write_csv(table, "ablation_packet_size");
  return 0;
}
