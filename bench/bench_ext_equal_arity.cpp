// Extension experiment: an equal-arity rematch — 4-ary 4-cube vs 4-ary
// 4-tree.
//
// The paper's pin-count normalization gives the 2-cube double-width data
// paths because its routers have half the tree's arity. A 4-ary 4-cube has
// 256 nodes and arity 2n = 8 — exactly the tree switch's arity — so both
// get 2-byte flits and the pin argument vanishes. What remains are the
// other two physical constraints: the 4-cube cannot be embedded in 3-space
// with short wires (we charge it the tree's medium-wire delay, and also
// show the optimistic short-wire variant), and its routers need bigger
// crossbars (P = 2nV + 1 = 33).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  smart::benchtool::init_cli(argc, argv);
  using namespace smart;
  using namespace smart::benchtool;

  std::printf("Extension — equal-arity comparison: 4-ary 4-cube vs 4-ary "
              "4-tree (256 nodes, 2-byte flits, uniform traffic)\n");

  NetworkSpec cube4;
  cube4.topology = std::string("cube");
  cube4.k = 4;
  cube4.n = 4;
  cube4.vcs = 4;
  cube4.flit_bytes = 2;  // equal pins at equal arity

  struct Row {
    std::string label;
    NetworkSpec spec;
    WireLength wires;
  };
  std::vector<Row> rows;
  for (RoutingKind routing :
       {RoutingKind::kCubeDeterministic, RoutingKind::kCubeDuato}) {
    NetworkSpec spec = cube4;
    spec.routing = routing;
    rows.push_back({"4-ary 4-cube, " + to_string(routing) + " (medium wires)",
                    spec, WireLength::kMedium});
    rows.push_back({"4-ary 4-cube, " + to_string(routing) + " (short wires)",
                    spec, WireLength::kShort});
  }
  rows.push_back({"4-ary 4-tree, 4 vc", paper_tree_spec(4),
                  WireLength::kMedium});

  const auto loads = figure_load_grid();
  Table table({"configuration", "clock (ns)", "capacity (bits/ns)",
               "saturation (frac)", "throughput (bits/ns)",
               "latency@low (ns)"});
  for (const Row& row : rows) {
    const auto sweep =
        run_sweep(figure_config(row.spec, PatternKind::kUniform), loads);
    const auto sat = estimate_saturation(sweep);

    // Delays for the equal-arity router: the Chien model with this row's
    // wire class (the stock helpers assume short cube wires).
    RouterDelays delays;
    if (row.spec.topology == std::string("tree")) {
      delays = tree_adaptive_delays(row.spec.k, row.spec.vcs);
    } else {
      const unsigned nn = row.spec.n;
      const unsigned vcs = row.spec.vcs;
      const unsigned freedom = row.spec.routing == RoutingKind::kCubeDuato
                                   ? nn * (vcs / 2) + vcs / 2
                                   : vcs / 2;
      delays = router_delays(freedom, 2 * nn * vcs + 1, vcs, row.wires);
    }
    NormalizedScale scale = scale_for(row.spec);
    scale.clock_ns = delays.clock_ns();

    const SimulationResult* low = nullptr;
    for (const SimulationResult& point : sweep) {
      if (point.offered_fraction <= 0.31 && point.latency_cycles.count() > 0) {
        low = &point;
      }
    }
    // Built via insert rather than `">" + ...`: the char* + string&&
    // operator trips GCC 12's -Wrestrict false positive (PR 105651).
    std::string sat_cell = format_double(sat.offered_fraction, 2);
    if (!sat.saturated) sat_cell.insert(0, 1, '>');
    table.begin_row()
        .add_cell(row.label)
        .add_cell(scale.clock_ns, 2)
        .add_cell(scale.capacity_bits_per_ns(), 1)
        .add_cell(sat_cell)
        .add_cell(to_bits_per_ns(sat.accepted_fraction *
                                     scale.capacity_flits_per_node_cycle,
                                 scale.nodes, scale.flit_bytes,
                                 scale.clock_ns),
                  1)
        .add_cell(low != nullptr
                      ? format_double(
                            to_ns(low->latency_cycles.mean(), scale.clock_ns),
                            1)
                      : std::string{"-"});
  }
  std::printf("\n%s", table.to_text().c_str());
  write_csv(table, "ext_equal_arity");
  std::printf("\nAt equal arity the cube keeps its routing advantage only if\n"
              "one pretends a 4-dimensional torus has short wires; charged\n"
              "honestly with medium wires, the two networks land much closer\n"
              "— the 2-cube's edge in the paper comes from pin count AND\n"
              "embeddability together, not topology alone.\n");
  return 0;
}
