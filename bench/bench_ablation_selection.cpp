// Ablation A4 (ours): the fat-tree's ascending-link tie-break.
//
// The paper specifies "the less loaded link ... (a fair choice is made when
// more links are in a similar state)" but not the fair choice itself. This
// ablation shows the tie-break decides whether congestion-free permutations
// stay conflict-free with several virtual channels: stream-stable policies
// (salted affine) reach the paper's ~95 % complement saturation at any V,
// while memoryless policies (rotating, random) let back-to-back worms drift
// onto links owned by other streams and cap complement near 80 %. Spreading
// policies in turn do slightly better on transpose-like permutations.
//
// Section A5 (PR 8) widens the ablation to the composable escape-adaptive
// core: on the cube, the torus and the generated two-level fat-tree it
// sweeps the family's deterministic escape algorithm alone (the baseline
// every escape VC would run anyway) against the adaptive core with the
// credit-depth and stall-history selection policies. The summary verdict
// counts the families where the adaptive layer buys accepted bandwidth at
// or past 0.8 offered load — the regime the paper's CNF curves flatten in.
#include "bench_common.hpp"

#include "topology/registry.hpp"

namespace {

using namespace smart;

/// Highest accepted fraction among a curve's points at >= 0.8 offered.
double accepted_past_08(const Curve& curve) {
  double best = 0.0;
  for (const SimulationResult& point : curve.points) {
    if (point.offered_fraction >= 0.8 - 1e-9 &&
        point.accepted_fraction > best) {
      best = point.accepted_fraction;
    }
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  smart::benchtool::init_cli(argc, argv);
  using namespace smart;
  using namespace smart::benchtool;

  std::printf("Ablation — ascending-link tie-break of the 4-ary 4-tree "
              "(V = 4)\n");

  const std::vector<double> loads =
      quick_mode() ? std::vector<double>{0.5, 0.9}
                   : std::vector<double>{0.3, 0.5, 0.7, 0.8, 0.9, 1.0};
  const PatternKind patterns[] = {PatternKind::kUniform,
                                  PatternKind::kComplement,
                                  PatternKind::kTranspose};
  const TreeSelection policies[] = {
      TreeSelection::kSaltedAffine, TreeSelection::kRotating,
      TreeSelection::kRandom, TreeSelection::kMostCredits};

  std::vector<Curve> summary;
  Table table({"pattern", "tie-break", "offered (frac)", "accepted (frac)",
               "latency (cycles)"});
  for (PatternKind pattern : patterns) {
    for (TreeSelection policy : policies) {
      SimConfig config = figure_config(paper_tree_spec(4), pattern);
      config.net.selection = policy;
      Curve curve = run_curve(to_string(pattern) + ", " + to_string(policy),
                              config, loads);
      for (const SimulationResult& point : curve.points) {
        table.begin_row()
            .add_cell(to_string(pattern))
            .add_cell(to_string(policy))
            .add_cell(point.offered_fraction, 2)
            .add_cell(point.accepted_fraction, 3)
            .add_cell(point.latency_cycles.count() > 0
                          ? format_double(point.latency_cycles.mean(), 1)
                          : std::string{"-"});
      }
      summary.push_back(std::move(curve));
    }
  }

  std::printf("\n%s", table.to_text().c_str());
  write_csv(table, "ablation_selection");

  print_section("Saturation by tie-break policy");
  const Table sat = saturation_summary_table(summary);
  std::printf("%s", sat.to_text().c_str());
  write_csv(sat, "ablation_selection_saturation");

  // ---- A5: escape-adaptive vs the deterministic escape baseline --------
  print_section("Escape-adaptive vs deterministic escape (cube/torus/"
                "fat-tree2)");

  struct FamilyCase {
    const char* label;
    const char* spec;      // "family[:key=val,...]" (cube uses k/n below)
    RoutingKind baseline;  // the family's deterministic escape algorithm
  };
  const FamilyCase cases[] = {
      {"cube8x8", "cube", RoutingKind::kCubeDeterministic},
      {"torus256", "torus:nodes=256", RoutingKind::kTorusDor},
      {"fattree2-64", "fattree2:nodes=64,radix=16", RoutingKind::kUpDown},
  };
  const SelectionKind escape_policies[] = {SelectionKind::kMostCredits,
                                           SelectionKind::kStallEwma,
                                           SelectionKind::kSaltedAffine};

  Table escape_table({"family", "algorithm", "offered (frac)",
                      "accepted (frac)", "latency (cycles)"});
  Table verdict({"family", "baseline acc@0.8+", "adaptive acc@0.8+",
                 "adaptive wins"});
  unsigned wins = 0;
  for (const FamilyCase& fam : cases) {
    TopoSpec spec;
    std::string error;
    if (!parse_topology_spec(fam.spec, &spec, &error)) {
      std::fprintf(stderr, "bad spec %s: %s\n", fam.spec, error.c_str());
      return 1;
    }
    SimConfig base = figure_config(NetworkSpec{}, PatternKind::kUniform);
    base.net.topology = spec.family;
    base.net.topo_params = spec.params;
    if (spec.family == "cube") {
      base.net.k = 8;
      base.net.n = 2;
    }
    // The comparison needs the congested regime, not the paper horizon.
    base.timing.warmup_cycles = 500;
    base.timing.horizon_cycles = 5000;

    const auto tabulate = [&](const Curve& curve, const std::string& algo) {
      for (const SimulationResult& point : curve.points) {
        escape_table.begin_row()
            .add_cell(fam.label)
            .add_cell(algo)
            .add_cell(point.offered_fraction, 2)
            .add_cell(point.accepted_fraction, 3)
            .add_cell(point.latency_cycles.count() > 0
                          ? format_double(point.latency_cycles.mean(), 1)
                          : std::string{"-"});
      }
    };

    SimConfig det = base;
    det.net.routing = fam.baseline;
    const Curve det_curve = run_curve(
        std::string(fam.label) + ", " + to_string(fam.baseline), det, loads);
    tabulate(det_curve, to_string(fam.baseline));
    const double det_accepted = accepted_past_08(det_curve);

    double best_adaptive = 0.0;
    for (SelectionKind policy : escape_policies) {
      SimConfig adaptive = base;
      adaptive.net.routing = RoutingKind::kEscapeAdaptive;
      adaptive.net.selection = policy;
      const std::string algo =
          std::string("escape(") + to_string(policy) + ")";
      const Curve curve =
          run_curve(std::string(fam.label) + ", " + algo, adaptive, loads);
      tabulate(curve, algo);
      const double accepted = accepted_past_08(curve);
      if (accepted > best_adaptive) best_adaptive = accepted;
    }

    const bool win = best_adaptive > det_accepted;
    wins += win ? 1U : 0U;
    verdict.begin_row()
        .add_cell(fam.label)
        .add_cell(det_accepted, 3)
        .add_cell(best_adaptive, 3)
        .add_cell(win ? std::string{"yes"} : std::string{"no"});
  }

  std::printf("%s", escape_table.to_text().c_str());
  write_csv(escape_table, "ablation_escape_adaptive");
  print_section("Adaptive-vs-escape verdict at >= 0.8 offered");
  std::printf("%s", verdict.to_text().c_str());
  std::printf("\nadaptive beats the deterministic escape baseline on %u of "
              "%zu families\n", wins, std::size(cases));
  write_csv(verdict, "ablation_escape_verdict");
  return 0;
}
