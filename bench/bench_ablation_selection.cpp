// Ablation A4 (ours): the fat-tree's ascending-link tie-break.
//
// The paper specifies "the less loaded link ... (a fair choice is made when
// more links are in a similar state)" but not the fair choice itself. This
// ablation shows the tie-break decides whether congestion-free permutations
// stay conflict-free with several virtual channels: stream-stable policies
// (salted affine) reach the paper's ~95 % complement saturation at any V,
// while memoryless policies (rotating, random) let back-to-back worms drift
// onto links owned by other streams and cap complement near 80 %. Spreading
// policies in turn do slightly better on transpose-like permutations.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  smart::benchtool::init_cli(argc, argv);
  using namespace smart;
  using namespace smart::benchtool;

  std::printf("Ablation — ascending-link tie-break of the 4-ary 4-tree "
              "(V = 4)\n");

  const std::vector<double> loads =
      quick_mode() ? std::vector<double>{0.5, 0.9}
                   : std::vector<double>{0.3, 0.5, 0.7, 0.8, 0.9, 1.0};
  const PatternKind patterns[] = {PatternKind::kUniform,
                                  PatternKind::kComplement,
                                  PatternKind::kTranspose};
  const TreeSelection policies[] = {
      TreeSelection::kSaltedAffine, TreeSelection::kRotating,
      TreeSelection::kRandom, TreeSelection::kMostCredits};

  std::vector<Curve> summary;
  Table table({"pattern", "tie-break", "offered (frac)", "accepted (frac)",
               "latency (cycles)"});
  for (PatternKind pattern : patterns) {
    for (TreeSelection policy : policies) {
      SimConfig config = figure_config(paper_tree_spec(4), pattern);
      config.net.tree_selection = policy;
      Curve curve = run_curve(to_string(pattern) + ", " + to_string(policy),
                              config, loads);
      for (const SimulationResult& point : curve.points) {
        table.begin_row()
            .add_cell(to_string(pattern))
            .add_cell(to_string(policy))
            .add_cell(point.offered_fraction, 2)
            .add_cell(point.accepted_fraction, 3)
            .add_cell(point.latency_cycles.count() > 0
                          ? format_double(point.latency_cycles.mean(), 1)
                          : std::string{"-"});
      }
      summary.push_back(std::move(curve));
    }
  }

  std::printf("\n%s", table.to_text().c_str());
  write_csv(table, "ablation_selection");

  print_section("Saturation by tie-break policy");
  const Table sat = saturation_summary_table(summary);
  std::printf("%s", sat.to_text().c_str());
  write_csv(sat, "ablation_selection_saturation");
  return 0;
}
